"""Multi-pass static analysis of Datalog programs (``repro check``).

This is the static front door for the paper's assumptions: instead of the
scattered runtime raises the validator historically produced, every finding
is a structured :class:`Diagnostic` — code, severity, message, source span,
fix hint — and :func:`check_program` returns them all at once together with
the inferred column sorts, the live/dead rule slice, and a per-stratum
incrementalizability report (Section 3 methodology).

Passes
------

1. **Arity consistency** (DLC101) — every predicate keeps one arity across
   all rules.
2. **Name resolution** (DLC102–104) — ``Eval`` functions, ``Test``
   predicates, and aggregation operators resolve against the program's
   registries.
3. **Aggregation shape** (DLC304–307) — ASM1.1's collecting-relation shape
   and the single-slot/consistent-operator requirements normalization
   enforces.
4. **Rule safety / range restriction** (DLC201–205) — per-variable
   diagnostics for unbound head variables, Eval inputs, Test arguments and
   negated literals; an admissible body order must exist.
5. **Stratification** (DLC301–303) — ASM3: no negation inside a recursive
   component, one aggregation direction per component, one produced lattice
   per recursive component.
6. **Sort inference** (DLC401–402) — unify column sorts across rules
   (discrete vs. lattice-valued, seeded from aggregation operators) and
   report lattice mismatches.
7. **Reachability** (DLC601–603) — the backward slice from the exported
   predicates; dead rules and unused predicates are warnings, and
   :func:`live_slice` feeds the engines' dead-rule pruning.
8. **Aggregator laws** (DLC501–503, ``deep=True`` only) — bounded-exhaustive
   ASM2 checks (associativity, commutativity, identity, domination,
   stabilization) over sampled lattice elements, plus a ⊑-monotonicity probe
   of ``combine`` and a structural ASM1.3 audit (DLC504) of aggregation
   paths that flow through functions.

The legacy :func:`repro.datalog.validate.validate` is a thin wrapper raising
the first error-severity diagnostic as a :class:`ValidationError`; the
``repro check`` CLI surfaces everything, machine-readably with ``--json``
(schema: docs/check_schema.json).  Every code is documented with examples in
docs/STATIC_CHECKS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..lattices import LatticeError, check_well_behaving
from .ast import AggTerm, Eval, Literal, Rule, Span, Test, Variable, span_of
from .errors import ValidationError
from .normalize import normalize
from .planning import plan_body
from .program import Program
from .stratify import Component, stratify

#: Severities, most severe first; exit codes follow this order.
SEVERITIES = ("error", "warning", "info")

#: Cap on sampled lattice elements for the O(n^3) ASM2 law checks.
MAX_LAW_SAMPLES = 6

#: Which pass produced each diagnostic code (reported as ``"pass"`` in the
#: JSON schema; docs/check_schema.json).  ``parse``/``io`` cover the CLI's
#: pre-check failures (DLC001/DLC002), which never reach the passes below.
PASS_BY_CODE = {
    "DLC001": "parse",
    "DLC002": "io",
    "DLC101": "arity",
    "DLC102": "names",
    "DLC103": "names",
    "DLC104": "names",
    "DLC201": "safety",
    "DLC202": "safety",
    "DLC203": "safety",
    "DLC204": "safety",
    "DLC205": "safety",
    "DLC301": "strata",
    "DLC302": "strata",
    "DLC303": "strata",
    "DLC304": "shape",
    "DLC305": "shape",
    "DLC306": "shape",
    "DLC307": "shape",
    "DLC401": "sorts",
    "DLC402": "sorts",
    "DLC501": "laws",
    "DLC502": "laws",
    "DLC503": "laws",
    "DLC504": "laws",
    "DLC601": "reachability",
    "DLC602": "reachability",
    "DLC603": "reachability",
    "DLC701": "perf",
    "DLC702": "perf",
    "DLC703": "perf",
    "DLC704": "perf",
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``code`` is a stable ``DLCxyz`` identifier (x = pass family), ``severity``
    one of :data:`SEVERITIES`, ``span`` where the offending rule came from,
    and ``hint`` a short suggested fix.  Sortable most-severe-first, then by
    source position.
    """

    code: str
    severity: str
    message: str
    span: Span
    hint: str | None = None
    pred: str | None = None
    #: The pass that produced this finding (see :data:`PASS_BY_CODE`).
    pass_name: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def sort_key(self) -> tuple:
        return (
            SEVERITIES.index(self.severity),
            self.span.source,
            self.span.line,
            self.span.column,
            self.code,
        )

    def format(self) -> str:
        """One-line human-readable rendering."""
        text = f"{self.severity} {self.code} at {self.span}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": {
                "source": self.span.source,
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            },
            "hint": self.hint,
            "pred": self.pred,
            "pass": self.pass_name or PASS_BY_CODE.get(self.code),
        }


@dataclass
class CheckResult:
    """Everything :func:`check_program` learned about a program."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Dependency components, bottom-up; None when stratification failed.
    components: list[Component] | None = None
    #: Inferred column sorts: pred -> tuple of "discrete" / "lattice:<name>".
    sorts: dict[str, tuple[str, ...]] = field(default_factory=dict)
    live_rules: list[Rule] = field(default_factory=list)
    dead_rules: list[Rule] = field(default_factory=list)
    live_predicates: set[str] = field(default_factory=set)
    #: Per-component incrementalizability summary (Section 3).
    report: list[dict] = field(default_factory=list)
    #: Per-EDB-predicate impact report (``check_program(..., impact=True)``
    #: / ``repro check --impact``); None when not requested.
    impact: dict | None = None
    seconds: float = 0.0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def first_error(self) -> Diagnostic | None:
        return next((d for d in self.diagnostics if d.is_error), None)

    def exit_code(self) -> int:
        """CLI convention: 2 on errors, 1 on warnings only, 0 clean."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def to_dict(self) -> dict:
        out = {
            "diagnostics": [d.to_dict() for d in sorted(
                self.diagnostics, key=Diagnostic.sort_key
            )],
            "counts": {
                sev: sum(1 for d in self.diagnostics if d.severity == sev)
                for sev in SEVERITIES
            },
            "sorts": {pred: list(cols) for pred, cols in sorted(self.sorts.items())},
            "dead_rules": [repr(r) for r in self.dead_rules],
            "live_predicates": sorted(self.live_predicates),
            "report": self.report,
            "seconds": self.seconds,
        }
        if self.impact is not None:
            out["impact"] = self.impact
        return out


def _diag(
    diags: list[Diagnostic],
    code: str,
    severity: str,
    message: str,
    node: object,
    hint: str | None = None,
    pred: str | None = None,
) -> None:
    diags.append(
        Diagnostic(
            code=code,
            severity=severity,
            message=message,
            span=node if isinstance(node, Span) else span_of(node),
            hint=hint,
            pred=pred,
            pass_name=PASS_BY_CODE.get(code),
        )
    )


# -- pass 1: arity consistency (DLC101) ---------------------------------------


def _check_arities(program: Program, diags: list[Diagnostic]) -> None:
    seen: dict[str, tuple[int, Rule]] = {}
    for rule in program.rules:
        for pred, arity in [(rule.head.pred, rule.head.arity)] + [
            (lit.pred, lit.atom.arity) for lit in rule.body_literals()
        ]:
            prior = seen.get(pred)
            if prior is None:
                seen[pred] = (arity, rule)
            elif prior[0] != arity:
                _diag(
                    diags,
                    "DLC101",
                    "error",
                    f"predicate {pred} used with arities {prior[0]} and "
                    f"{arity} (first use at {span_of(prior[1])})",
                    rule,
                    hint=f"give every {pred} atom the same number of arguments",
                    pred=pred,
                )


# -- pass 2: name resolution (DLC102-104) -------------------------------------


def _check_names(program: Program, diags: list[Diagnostic]) -> None:
    for rule in program.rules:
        for item in rule.body:
            if isinstance(item, Eval) and item.fn not in program.functions:
                _diag(
                    diags,
                    "DLC102",
                    "error",
                    f"unknown function {item.fn!r} in {rule!r}; register it "
                    f"with program.register_function",
                    item,
                    hint=f"program.register_function({item.fn!r}, fn)",
                    pred=rule.head.pred,
                )
            if isinstance(item, Test) and item.fn not in program.tests:
                _diag(
                    diags,
                    "DLC103",
                    "error",
                    f"unknown test {item.fn!r} in {rule!r}; register it "
                    f"with program.register_test",
                    item,
                    hint=f"program.register_test({item.fn!r}, fn)",
                    pred=rule.head.pred,
                )
        agg = rule.head.agg_term
        if agg is not None and agg.op not in program.aggregators:
            _diag(
                diags,
                "DLC104",
                "error",
                f"unknown aggregator {agg.op!r} in {rule!r}; register it "
                f"with program.register_aggregator",
                rule,
                hint=f"program.register_aggregator({agg.op!r}, lub(lattice))",
                pred=rule.head.pred,
            )


# -- pass 3: aggregation shape (DLC304-307) -----------------------------------


def _check_shape(
    program: Program, diags: list[Diagnostic], normalized: bool
) -> None:
    edb = program.edb_predicates()
    by_pred: dict[str, list[Rule]] = {}
    for rule in program.rules:
        by_pred.setdefault(rule.head.pred, []).append(rule)

    for pred, rules in by_pred.items():
        agg_rules = [r for r in rules if r.is_aggregation]
        if not agg_rules:
            continue
        for rule in agg_rules:
            if len(rule.head.agg_positions()) != 1:
                _diag(
                    diags,
                    "DLC304",
                    "error",
                    f"{rule!r}: exactly one aggregation slot per head",
                    rule,
                    hint="keep a single op<Var> argument per head",
                    pred=pred,
                )
        if len(agg_rules) != len(rules):
            plain = next(r for r in rules if not r.is_aggregation)
            _diag(
                diags,
                "DLC305",
                "error",
                f"predicate {pred} mixes aggregation and plain rules",
                plain,
                hint="route plain derivations through the collecting relation",
                pred=pred,
            )
            continue
        shapes = {
            (r.head.arity, r.head.agg_positions()[0], r.head.agg_term.op)
            for r in agg_rules
            if len(r.head.agg_positions()) == 1
        }
        if len(shapes) > 1:
            _diag(
                diags,
                "DLC306",
                "error",
                f"aggregation rules for {pred} disagree on arity, slot, or "
                f"operator: {sorted(shapes)}",
                agg_rules[-1],
                hint="give every aggregation rule for the predicate the "
                     "same head shape",
                pred=pred,
            )
        if pred in edb:
            _diag(
                diags,
                "DLC307",
                "error",
                f"aggregated predicate {pred} cannot be an input relation",
                agg_rules[0],
                hint="feed inputs through a separate EDB predicate",
                pred=pred,
            )
        if normalized:
            for rule in agg_rules:
                if len(rule.body) != 1 or not isinstance(rule.body[0], Literal):
                    _diag(
                        diags,
                        "DLC305",
                        "error",
                        f"{rule!r}: aggregation must consume a single "
                        f"collecting relation (run normalize() first)",
                        rule,
                        hint="normalize() factors aggregation bodies into "
                             "collecting relations",
                        pred=pred,
                    )


# -- pass 4: rule safety / range restriction (DLC201-205) ---------------------


def _bindable_variables(rule: Rule) -> set[Variable]:
    """Fixpoint of variables a left-to-right evaluation can ever bind:
    positive-literal variables, closed under Eval outputs whose inputs are
    bound."""
    bound: set[Variable] = set()
    for lit in rule.positive_literals():
        bound |= lit.atom.variables()
    changed = True
    while changed:
        changed = False
        for item in rule.body:
            if isinstance(item, Eval) and item.var not in bound:
                if {a for a in item.args if isinstance(a, Variable)} <= bound:
                    bound.add(item.var)
                    changed = True
    return bound


def _check_safety(program: Program, diags: list[Diagnostic]) -> None:
    for rule in program.rules:
        bound = _bindable_variables(rule)
        found = False
        for v in sorted(rule.head_variables() - bound, key=lambda v: v.name):
            found = True
            _diag(
                diags,
                "DLC201",
                "error",
                f"head variable {v.name} of {rule!r} is not bound by the "
                f"body (unsafe rule)",
                rule,
                hint=f"bind {v.name} in a positive body literal",
                pred=rule.head.pred,
            )
        for item in rule.body:
            if isinstance(item, Eval):
                unbound = sorted(
                    {a.name for a in item.args if isinstance(a, Variable)}
                    - {v.name for v in bound}
                )
                if unbound:
                    found = True
                    _diag(
                        diags,
                        "DLC202",
                        "error",
                        f"argument(s) {', '.join(unbound)} of "
                        f"{item!r} in {rule!r} are never bound",
                        item,
                        hint="bind Eval inputs with a positive literal first",
                        pred=rule.head.pred,
                    )
            elif isinstance(item, Test):
                unbound = sorted(
                    {a.name for a in item.args if isinstance(a, Variable)}
                    - {v.name for v in bound}
                )
                if unbound:
                    found = True
                    _diag(
                        diags,
                        "DLC203",
                        "error",
                        f"argument(s) {', '.join(unbound)} of test "
                        f"{item!r} in {rule!r} are never bound",
                        item,
                        hint="tests filter bound values; bind them first",
                        pred=rule.head.pred,
                    )
            elif isinstance(item, Literal) and item.negated:
                unbound = sorted(
                    {v.name for v in item.atom.variables()}
                    - {v.name for v in bound}
                )
                if unbound:
                    found = True
                    _diag(
                        diags,
                        "DLC204",
                        "error",
                        f"variable(s) {', '.join(unbound)} of negated "
                        f"{item!r} in {rule!r} are never bound (unsafe "
                        f"negation)",
                        item,
                        hint="negation is safe only on fully bound atoms",
                        pred=rule.head.pred,
                    )
        if not found:
            # Per-variable analysis is clean; defer to the planner for the
            # residual ordering cases (and to stay exactly as strict).
            try:
                plan_body(rule)
            except ValidationError as exc:
                _diag(
                    diags,
                    "DLC205",
                    "error",
                    exc.raw_message,
                    rule,
                    hint="reorder or add positive literals so every filter "
                         "eventually has its inputs bound",
                    pred=rule.head.pred,
                )


# -- pass 5: stratification + ASM3 (DLC301-303) -------------------------------


def _check_strata(
    program: Program, diags: list[Diagnostic]
) -> list[Component] | None:
    try:
        components = stratify(program)
    except ValidationError as exc:
        _diag(
            diags,
            exc.code or "DLC301",
            "error",
            exc.raw_message,
            exc.span if exc.span is not None else span_of(None),
            hint="break the negation cycle with an intermediate stratum",
        )
        return None

    for component in components:
        directions: dict[str, Rule] = {}
        lattices: dict[str, Rule] = {}
        for rule in component.rules:
            agg = rule.head.agg_term
            if agg is None or agg.op not in program.aggregators:
                continue
            aggregator = program.aggregators[agg.op]
            directions.setdefault(aggregator.direction, rule)
            lattices.setdefault(aggregator.lattice.name, rule)
        if len(directions) > 1:
            _diag(
                diags,
                "DLC302",
                "error",
                f"component {sorted(component.predicates)} mixes aggregation "
                f"directions {sorted(directions)} (ASM3)",
                list(directions.values())[-1],
                hint="split the predicates so each recursive component "
                     "aggregates in one direction",
            )
        if component.recursive and len(lattices) > 1:
            _diag(
                diags,
                "DLC303",
                "error",
                f"component {sorted(component.predicates)} aggregates over "
                f"multiple lattices {sorted(lattices)}; use one produced "
                f"lattice per recursive component (ASM3)",
                list(lattices.values())[-1],
                hint="stage the lattices into separate strata",
            )
    return components


# -- pass 6: sort inference (DLC401-402) --------------------------------------


class _UnionFind:
    def __init__(self):
        self.parent: dict = {}

    def find(self, x):
        parent = self.parent
        root = parent.setdefault(x, x)
        while root != parent[root]:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return self.find(a)


def _infer_sorts(
    program: Program, diags: list[Diagnostic]
) -> dict[str, tuple[str, ...]]:
    """Unify column sorts across rules; lattice sorts are seeded from the
    aggregation operators.  Returns pred -> per-column sort names."""
    uf = _UnionFind()
    #: root -> {lattice name -> first contributing rule}
    tags: dict[object, dict[str, Rule]] = {}

    def tag(slot, lattice_name: str, rule: Rule) -> None:
        root = uf.find(slot)
        tags.setdefault(root, {}).setdefault(lattice_name, rule)

    def merge(a, b) -> None:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            return
        merged = {**tags.pop(rb, {}), **tags.pop(ra, {})}
        root = uf.union(ra, rb)
        if merged:
            tags[root] = merged

    for ridx, rule in enumerate(program.rules):
        atoms = [(rule.head.pred, rule.head.args)] + [
            (lit.pred, lit.atom.args) for lit in rule.body_literals()
        ]
        for pred, args in atoms:
            for i, arg in enumerate(args):
                if isinstance(arg, Variable) and not arg.is_wildcard:
                    merge(("p", pred, i), ("v", ridx, arg.name))
        agg = rule.head.agg_term
        if agg is not None and agg.op in program.aggregators:
            lattice = program.aggregators[agg.op].lattice
            pos = rule.head.agg_positions()[0]
            tag(("p", rule.head.pred, pos), lattice.name, rule)
            tag(("v", ridx, agg.var.name), lattice.name, rule)

    # Conflicts: one unified slot, two lattices.
    reported: set = set()
    for root, lattice_rules in tags.items():
        if len(lattice_rules) > 1 and root not in reported:
            reported.add(root)
            names = sorted(lattice_rules)
            rule = lattice_rules[names[-1]]
            _diag(
                diags,
                "DLC401",
                "error",
                f"lattice sort mismatch: one column carries values from "
                f"lattices {', '.join(names)}",
                rule,
                hint="keep each column in a single lattice; convert "
                     "explicitly with an Eval if mixing is intended",
                pred=rule.head.pred,
            )

    def sort_of(pred: str, i: int) -> str:
        lattice_rules = tags.get(uf.find(("p", pred, i)), {})
        if not lattice_rules:
            return "discrete"
        return "lattice:" + sorted(lattice_rules)[0]

    arities: dict[str, int] = {}
    for rule in program.rules:
        arities.setdefault(rule.head.pred, rule.head.arity)
        for lit in rule.body_literals():
            arities.setdefault(lit.pred, lit.atom.arity)
    sorts = {
        pred: tuple(sort_of(pred, i) for i in range(arity))
        for pred, arity in arities.items()
    }

    # Lattice-sorted group keys defeat per-group pruning (warning).
    for rule in program.rules:
        agg = rule.head.agg_term
        if agg is None:
            continue
        pos = rule.head.agg_positions()[0]
        for i, arg in enumerate(rule.head.args):
            if i == pos or not isinstance(arg, Variable):
                continue
            if sort_of(rule.head.pred, i) != "discrete":
                _diag(
                    diags,
                    "DLC402",
                    "warning",
                    f"group key {arg.name} of {rule.head.pred} is "
                    f"lattice-valued; aggregation groups will not collapse "
                    f"as the lattice value grows",
                    rule,
                    hint="group on discrete keys and aggregate the lattice "
                         "column",
                    pred=rule.head.pred,
                )
    return sorts


# -- pass 7: reachability / dead rules (DLC601-603) ---------------------------


def live_slice(program: Program) -> tuple[list[Rule], list[Rule], set[str]]:
    """The backward slice from the exported predicates.

    Returns ``(live_rules, dead_rules, live_predicates)``.  A rule is live
    iff its head predicate is (transitively) read — positively or negatively
    — while deriving some exported predicate.  The engines prune dead rules
    before planning/compiling (opt out with ``REPRO_NO_PRUNE=1``).
    """
    by_head: dict[str, list[Rule]] = {}
    for rule in program.rules:
        by_head.setdefault(rule.head.pred, []).append(rule)

    live_preds: set[str] = set()
    worklist = sorted(program.exported_predicates())
    while worklist:
        pred = worklist.pop()
        if pred in live_preds:
            continue
        live_preds.add(pred)
        for rule in by_head.get(pred, ()):
            for lit in rule.body_literals():
                if lit.pred not in live_preds:
                    worklist.append(lit.pred)

    live = [r for r in program.rules if r.head.pred in live_preds]
    dead = [r for r in program.rules if r.head.pred not in live_preds]
    return live, dead, live_preds


def _check_reachability(
    program: Program, diags: list[Diagnostic], result: CheckResult
) -> None:
    live, dead, live_preds = live_slice(program)
    result.live_rules = live
    result.dead_rules = dead
    result.live_predicates = live_preds

    known = program.all_predicates()
    if program.exports is not None:
        for name in sorted(program.exports):
            if name not in known:
                _diag(
                    diags,
                    "DLC603",
                    "warning",
                    f".export names unknown predicate {name}",
                    span_of(None),
                    hint="drop the export or define the predicate",
                    pred=name,
                )

    dead_preds = sorted({r.head.pred for r in dead})
    for rule in dead:
        _diag(
            diags,
            "DLC601",
            "warning",
            f"dead rule: {rule!r} never contributes to an exported "
            f"predicate",
            rule,
            hint="export the predicate or delete the rule (it is pruned "
                 "before compilation)",
            pred=rule.head.pred,
        )
    for pred in dead_preds:
        _diag(
            diags,
            "DLC602",
            "warning",
            f"predicate {pred} is defined but unreachable from the exports",
            next(r for r in dead if r.head.pred == pred),
            hint="add it to .export if downstream consumers need it",
            pred=pred,
        )


# -- pass 8: perf lints over the impact graph (DLC701-704) --------------------


def _check_perf(
    program: Program,
    components: list[Component],
    diags: list[Diagnostic],
) -> None:
    """Performance lints (all ``info``: they never fail a run) built on the
    static change-impact graph (:mod:`repro.datalog.impact`):

    * DLC701 — cross-product join: a body whose positive literals fall into
      two or more variable-sharing islands enumerates their product.
    * DLC702 — delta-unreachable rule: no EDB delta can ever re-fire it, so
      it only costs during from-scratch solves yet its delta machinery
      would be compiled and consulted every epoch (the engines skip it; see
      docs/PERFORMANCE.md).
    * DLC703 — singleton variable: bound once, never used; a wildcard
      avoids carrying the binding through the join.
    * DLC704 — self-widening recursion: a recursive component aggregates
      toward an extremum its lattice does not have, so the inflationary
      climb is not statically bounded (only the ascending-chain watchdog
      catches divergence).
    """
    from .impact import ImpactIndex

    impact = ImpactIndex(program, components)

    for rule in program.rules:
        named = [
            lit
            for lit in rule.positive_literals()
            if any(
                isinstance(a, Variable) and not a.is_wildcard
                for a in lit.atom.args
            )
        ]
        if len(named) >= 2:
            uf = _UnionFind()

            def connect(names: list[str]) -> None:
                for other in names[1:]:
                    uf.union(names[0], other)

            groups: list[list[str]] = []
            for lit in rule.positive_literals():
                groups.append(
                    [
                        a.name
                        for a in lit.atom.args
                        if isinstance(a, Variable) and not a.is_wildcard
                    ]
                )
            for item in rule.body:
                if isinstance(item, Eval):
                    groups.append(
                        [a.name for a in item.args if isinstance(a, Variable)]
                        + [item.var.name]
                    )
                elif isinstance(item, Test):
                    groups.append(
                        [a.name for a in item.args if isinstance(a, Variable)]
                    )
            for names in groups:
                connect(names)
            islands = {
                uf.find(
                    next(
                        a.name
                        for a in lit.atom.args
                        if isinstance(a, Variable) and not a.is_wildcard
                    )
                )
                for lit in named
            }
            if len(islands) > 1:
                _diag(
                    diags,
                    "DLC701",
                    "info",
                    f"{rule!r}: body literals share no variables across "
                    f"{len(islands)} islands; the join enumerates their "
                    f"cross product",
                    rule,
                    hint="link the literals through a shared variable or "
                         "split the rule",
                    pred=rule.head.pred,
                )

        body = rule.body_literals()
        if body and not any(
            lit.pred in impact.delta_reachable for lit in body
        ):
            _diag(
                diags,
                "DLC702",
                "info",
                f"{rule!r}: no input (EDB) delta can reach this rule; it "
                f"only fires during from-scratch solves",
                rule,
                hint="expected for static configuration chains; the engines "
                     "skip its delta machinery (docs/PERFORMANCE.md)",
                pred=rule.head.pred,
            )

        # A variable used in the head is output, not a join artifact (a
        # head-only singleton is DLC201 unsafety, not a perf smell); only
        # flag variables bound and then dropped entirely within the body.
        counts: dict[str, int] = {}
        head_vars: set[str] = set()

        def see(variable) -> None:
            if isinstance(variable, Variable) and not variable.is_wildcard:
                counts[variable.name] = counts.get(variable.name, 0) + 1

        for arg in rule.head.args:
            if isinstance(arg, Variable):
                head_vars.add(arg.name)
        agg = rule.head.agg_term
        if agg is not None:
            head_vars.add(agg.var.name)
        for item in rule.body:
            if isinstance(item, Literal):
                for arg in item.atom.args:
                    see(arg)
            elif isinstance(item, Eval):
                for arg in item.args:
                    see(arg)
                see(item.var)
            elif isinstance(item, Test):
                for arg in item.args:
                    see(arg)
        for name in sorted(
            n for n, c in counts.items() if c == 1 and n not in head_vars
        ):
            _diag(
                diags,
                "DLC703",
                "info",
                f"variable {name} of {rule!r} occurs exactly once; the "
                f"binding is carried through the join but never used",
                rule,
                hint=f"rename {name} to _ so the planner can drop it",
                pred=rule.head.pred,
            )

    for component in components:
        if not (component.recursive and component.aggregated):
            continue
        seen_preds: set[str] = set()
        for rule in component.rules:
            agg = rule.head.agg_term
            if (
                agg is None
                or agg.op not in program.aggregators
                or rule.head.pred in seen_preds
            ):
                continue
            seen_preds.add(rule.head.pred)
            aggregator = program.aggregators[agg.op]
            lattice = aggregator.lattice
            extremum = "top" if aggregator.direction == "up" else "bottom"
            try:
                if aggregator.direction == "up":
                    lattice.top()
                else:
                    lattice.bottom()
            except LatticeError:
                _diag(
                    diags,
                    "DLC704",
                    "info",
                    f"recursive aggregation {rule.head.pred} climbs "
                    f"{aggregator.direction} through lattice "
                    f"{lattice.name}, which has no {extremum} element; a "
                    f"self-widening loop is not statically bounded "
                    f"(non-Noetherian chain)",
                    rule,
                    hint="add a widening or bound the lattice; at runtime "
                         "only the ascending-chain watchdog stops a "
                         "divergent climb (docs/ROBUSTNESS.md)",
                    pred=rule.head.pred,
                )


# -- pass 9 (deep): aggregator laws + ASM1.3 audit (DLC501-504) ---------------


def _aggregated_inputs(rule: Rule, aggregated: set[str]) -> list[str]:
    """Variables in ``rule`` bound from an aggregated predicate's columns."""
    out: list[str] = []
    for lit in rule.positive_literals():
        if lit.pred in aggregated:
            out.extend(v.name for v in lit.atom.variables())
    return out


def _check_aggregator_laws(
    program: Program, diags: list[Diagnostic]
) -> None:
    first_use: dict[str, Rule] = {}
    for rule in program.rules:
        agg = rule.head.agg_term
        if agg is not None and agg.op not in first_use:
            first_use[agg.op] = rule

    for op, rule in sorted(first_use.items()):
        aggregator = program.aggregators.get(op)
        if aggregator is None:
            continue  # DLC104 already reported
        lattice = aggregator.lattice
        samples = list(lattice.samples())[:MAX_LAW_SAMPLES]
        if len(samples) < 3:
            _diag(
                diags,
                "DLC502",
                "info",
                f"lattice {lattice.name} provides only {len(samples)} sample "
                f"element(s); ASM2 laws for {op!r} were not exercised",
                rule,
                hint="override Lattice.samples() with a few representative "
                     "elements",
                pred=rule.head.pred,
            )
            continue
        try:
            check_well_behaving(aggregator, samples)
        except LatticeError as exc:
            _diag(
                diags,
                "DLC501",
                "error",
                f"aggregator {op!r} violates the well-behaving laws (ASM2): "
                f"{exc}",
                rule,
                hint="make combine associative, commutative, and dominating "
                     "over its aggregands",
                pred=rule.head.pred,
            )
            continue
        # Identity: the direction-extremal element must be neutral.
        try:
            identity = (
                lattice.bottom()
                if aggregator.direction == "up"
                else lattice.top()
            )
        except LatticeError:
            identity = None
        if identity is not None:
            bad = next(
                (
                    s
                    for s in samples
                    if aggregator.combine(identity, s) != s
                ),
                None,
            )
            if bad is not None:
                _diag(
                    diags,
                    "DLC501",
                    "error",
                    f"aggregator {op!r} violates the well-behaving laws "
                    f"(ASM2): {identity!r} is not an identity at {bad!r}",
                    rule,
                    hint="combine(identity, x) must equal x",
                    pred=rule.head.pred,
                )
                continue
        # ⊑-monotonicity of combine: a ⊑ b  ⇒  a∗c ⊑ b∗c.  Widenings are
        # deliberately not monotone, so this is informational (ASM2 does not
        # require it; DRed-style differencing does).
        violation = None
        for a in samples:
            for b in samples:
                if not lattice.leq(a, b):
                    continue
                for c in samples:
                    if not lattice.leq(
                        aggregator.combine(a, c), aggregator.combine(b, c)
                    ):
                        violation = (a, b, c)
                        break
                if violation:
                    break
            if violation:
                break
        if violation:
            a, b, c = violation
            _diag(
                diags,
                "DLC503",
                "info",
                f"combine of {op!r} is not ⊑-monotone: {a!r} ⊑ {b!r} but "
                f"combine({a!r}, {c!r}) ⋢ combine({b!r}, {c!r}); incremental "
                f"engines rely on eventual monotonicity here",
                rule,
                hint="expected for widenings; verify ASM1.3 (an eventually "
                     "dominating rule exists)",
                pred=rule.head.pred,
            )


def _audit_monotone_paths(
    program: Program,
    components: list[Component],
    diags: list[Diagnostic],
) -> None:
    """Structural ASM1.3 audit: flag recursive aggregation values that flow
    through registered functions, where eventual ⊑-monotonicity is the
    analysis author's promise (paper Section 4.3)."""
    for component in components:
        if not (component.recursive and component.aggregated):
            continue
        aggregated = set(component.aggregated)
        for rule in component.rules:
            fed = set(_aggregated_inputs(rule, aggregated))
            if not fed:
                continue
            for item in rule.body:
                if not isinstance(item, Eval):
                    continue
                used = {
                    a.name for a in item.args if isinstance(a, Variable)
                } & fed
                if used:
                    _diag(
                        diags,
                        "DLC504",
                        "info",
                        f"aggregated value(s) {', '.join(sorted(used))} flow "
                        f"through function {item.fn!r} in {rule!r}; eventual "
                        f"⊑-monotonicity (ASM1.3) cannot be checked "
                        f"statically",
                        item,
                        hint="ensure a dominating rule eventually compensates "
                             "any non-monotone step",
                        pred=rule.head.pred,
                    )


# -- pass 10: incrementalizability report -------------------------------------


def _incrementalizability(
    program: Program, components: list[Component]
) -> list[dict]:
    report = []
    for component in components:
        aggregated = set(component.aggregated)
        has_negation = any(
            lit.negated
            for rule in component.rules
            for lit in rule.body_literals()
        )
        nonmono_path = any(
            isinstance(item, Eval)
            and {
                a.name for a in item.args if isinstance(a, Variable)
            } & set(_aggregated_inputs(rule, aggregated))
            for rule in component.rules
            for item in rule.body
        )
        recursive_agg = component.recursive and bool(aggregated)
        dred_ok = not (recursive_agg and nonmono_path)
        if not component.recursive:
            note = "non-recursive stratum: any engine, differencing trivial"
        elif not aggregated:
            note = "recursive discrete stratum: DRed-style deletion/" \
                   "re-derivation applies"
        elif dred_ok:
            note = "recursive aggregation with monotone structure: DRedL " \
                   "or Laddder"
        else:
            note = "recursive aggregation feeds functions (eventual " \
                   "⊑-monotonicity): Laddder's timestamped compensation " \
                   "required"
        report.append(
            {
                "component": component.index,
                "predicates": sorted(component.predicates),
                "recursive": component.recursive,
                "aggregated": sorted(aggregated),
                "has_negation": has_negation,
                "engines": {
                    "naive": True,
                    "seminaive": True,
                    "dredl": dred_ok,
                    "laddder": True,
                },
                "note": note,
            }
        )
    return report


# -- driver -------------------------------------------------------------------


def check_program(
    program: Program,
    *,
    normalize_first: bool = False,
    deep: bool = False,
    impact: bool = False,
) -> CheckResult:
    """Run the static passes over ``program`` and collect every finding.

    ``normalize_first`` works on a normalized copy (what the engines
    evaluate), converting normalization failures into diagnostics instead of
    exceptions — the mode the CLI uses on freshly parsed sources.  Without
    it, the program is checked as given (the :func:`validate` contract).
    ``deep`` adds the sampled ASM2 law checks and the ASM1.3 audit.
    ``impact`` attaches the per-EDB-predicate change-impact report
    (:meth:`repro.datalog.impact.ImpactIndex.report`) to the result.
    """
    started = time.perf_counter()
    result = CheckResult()
    diags = result.diagnostics

    if normalize_first:
        work = program.copy()
        try:
            normalize(work)
            program = work
        except ValidationError as exc:
            _diag(
                diags,
                exc.code or "DLC305",
                "error",
                exc.raw_message,
                exc.span if exc.span is not None else span_of(None),
            )
            # Shape is broken; keep checking the un-normalized rules.
            program = work

    _check_arities(program, diags)
    _check_names(program, diags)
    _check_shape(program, diags, normalized=not normalize_first)
    _check_safety(program, diags)
    result.components = _check_strata(program, diags)
    result.sorts = _infer_sorts(program, diags)
    _check_reachability(program, diags, result)
    if result.components is not None:
        _check_perf(program, result.components, diags)
    if deep:
        _check_aggregator_laws(program, diags)
        if result.components is not None:
            _audit_monotone_paths(program, result.components, diags)
    if result.components is not None:
        result.report = _incrementalizability(program, result.components)
        if impact:
            from .impact import ImpactIndex

            result.impact = ImpactIndex(program, result.components).report()

    result.seconds = time.perf_counter() - started
    return result
