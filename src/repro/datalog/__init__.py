"""Datalog with lattice aggregation: AST, parser, and static pipeline.

The public surface mirrors IncA's front end: write rules as text
(:func:`parse`) or via the AST helpers (:func:`atom`, :func:`head`,
:func:`agg`, ...), register lattices/aggregators/functions on the
:class:`Program`, then hand it to any solver in :mod:`repro.engines`.
"""

from .ast import (
    BUILDER_SPAN,
    AggTerm,
    Atom,
    BodyItem,
    Constant,
    Eval,
    Head,
    Literal,
    Rule,
    Span,
    Term,
    Test,
    Variable,
    agg,
    atom,
    const,
    head,
    let,
    negated,
    span_of,
    test,
    var,
    vars,
)
from .check import CheckResult, Diagnostic, check_program, live_slice
from .errors import DatalogError, ParseError, SolverError, ValidationError
from .normalize import collecting_name, factor_aggregations, normalize
from .parser import parse
from .planning import delta_plans, plan_body
from .pretty import format_program, format_relation, format_relations, format_strata
from .program import Program
from .stratify import Component, stratify
from .validate import validate

__all__ = [
    "BUILDER_SPAN", "AggTerm", "Atom", "BodyItem", "CheckResult", "Component",
    "Constant", "DatalogError", "Diagnostic", "Eval", "Head", "Literal",
    "ParseError", "Program", "Rule", "SolverError", "Span", "Term", "Test",
    "ValidationError", "Variable", "agg", "atom", "check_program",
    "collecting_name", "const", "delta_plans", "factor_aggregations",
    "format_program", "format_relation", "format_relations", "format_strata",
    "head", "let", "live_slice", "negated", "normalize", "parse", "plan_body",
    "span_of", "stratify", "test", "validate", "var", "vars",
]
