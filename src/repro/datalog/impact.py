"""Static change-impact analysis over the predicate dependency graph.

The paper's whole evaluation (Sections 3 and 7.1) frames update cost as
*update time vs. impact*: a small edit should cost in proportion to the
facts it can actually affect.  The engines get most of the way there
dynamically — DRedL and Laddder seed each stratum only from the deltas that
reached it — but every update epoch still walks every stratum and keeps
delta machinery compiled for every rule, even when the edited EDB
predicates provably cannot reach most of the program.

This module computes that reachability *once*, statically.  From the parsed
(and normalized, and possibly dead-rule-pruned) program plus the dependency
components :func:`repro.datalog.stratify.stratify` produced, an
:class:`ImpactIndex` records, for every EDB predicate, its **forward impact
set**: the IDB predicates, rules, and strata a delta to it can possibly
affect.  Edges are polarity- and stratum-annotated:

* negated body literals widen the set exactly like positive ones — an
  insertion into a negated atom *retracts* downstream tuples, so the edge
  must be followed conservatively in both polarities;
* aggregation (lattice-merge) edges are likewise followed, and the merged
  predicates are additionally tracked per impact set so Laddder's
  compensation strata — where a single collecting-tuple move can replay a
  group's whole output-run history — are visible in reports.

Because dependency components are strongly connected, the forward closure
that reaches any predicate of a component contains the whole component;
impact footprints are therefore automatically component-closed, which is
what makes whole-stratum skipping sound (a stratum outside the footprint
receives no upstream delta and its fixpoint is unchanged by definition).

Runtime threading (docs/PERFORMANCE.md, ``REPRO_NO_IMPACT=1`` opt-out):

* every engine's ``update`` derives the batch's touched-EDB footprint via
  :meth:`ImpactIndex.footprint` and skips strata outside it
  (``metrics.strata_skipped``);
* kernel binding skips rules no registered delta source can reach
  (:meth:`rule_viable` / :meth:`possibly_nonempty`;
  ``metrics.rules_skipped_by_impact``);
* the service layer reports the footprint of each applied batch in its
  stats op (docs/SERVICE.md).

The same graph powers the DLC7xx perf lints and ``repro check --impact``
(:meth:`report`; docs/STATIC_CHECKS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .ast import Rule
from .program import Program
from .stratify import Component, stratify


@dataclass(frozen=True)
class ImpactEdge:
    """One annotated dependency edge: ``src`` (a body predicate) feeds
    ``dst`` (a head predicate) through some rule."""

    src: str
    dst: str
    #: True when some occurrence of ``src`` in a rule for ``dst`` is negated.
    negated: bool
    #: True when the edge crosses a lattice aggregation (``dst`` is merged).
    merge: bool
    #: Stratum (component index) of ``dst``.
    stratum: int


@dataclass(frozen=True)
class Footprint:
    """The slice of the program one update batch can possibly affect."""

    #: EDB predicates with effective (non-no-op) changes in the batch.
    touched: frozenset[str]
    #: Touched predicates plus their forward impact closure.
    predicates: frozenset[str]
    #: Indices of the dependency components that must be (re)visited.
    strata: frozenset[int]
    #: Lattice-aggregated predicates inside the footprint.
    lattice_merges: frozenset[str]
    #: How many components the program has in total.
    strata_total: int

    @property
    def strata_skipped(self) -> int:
        return self.strata_total - len(self.strata)

    def covers(self, pred: str) -> bool:
        return pred in self.predicates

    def to_dict(self) -> dict:
        return {
            "touched": sorted(self.touched),
            "predicates": sorted(self.predicates),
            "strata": sorted(self.strata),
            "lattice_merges": sorted(self.lattice_merges),
            "strata_total": self.strata_total,
            "strata_skipped": self.strata_skipped,
        }


class ImpactIndex:
    """Per-EDB-predicate forward impact sets over an annotated pred graph.

    Construct once per (pruned) program; ``components`` must be the same
    bottom-up component list the engines evaluate, so stratum indices in
    footprints line up with engine component indices.
    """

    def __init__(
        self, program: Program, components: list[Component] | None = None
    ):
        if components is None:
            components = stratify(program)
        self.components = components
        self.strata_total = len(components)
        self.edb: frozenset[str] = frozenset(program.edb_predicates())
        self.idb: frozenset[str] = frozenset(program.idb_predicates())
        #: pred -> component index (IDB predicates only).
        self.stratum_of: dict[str, int] = {}
        for component in components:
            for pred in component.predicates:
                self.stratum_of[pred] = component.index
        #: All lattice-aggregated predicates.
        self.aggregated: frozenset[str] = frozenset(
            pred for component in components for pred in component.aggregated
        )

        #: src pred -> successor head preds (all polarities, conservative).
        self._successors: dict[str, set[str]] = {}
        #: Annotated edge list (reports, lints).
        self.edges: list[ImpactEdge] = []
        #: head pred -> rules deriving it.
        self._rules_by_head: dict[str, list[Rule]] = {}
        edge_flags: dict[tuple[str, str], list[bool]] = {}
        for rule in program.rules:
            self._rules_by_head.setdefault(rule.head.pred, []).append(rule)
            head = rule.head.pred
            for literal in rule.body_literals():
                flags = edge_flags.setdefault((literal.pred, head), [False])
                flags[0] = flags[0] or literal.negated
                self._successors.setdefault(literal.pred, set()).add(head)
        for (src, dst), (negated,) in sorted(edge_flags.items()):
            self.edges.append(
                ImpactEdge(
                    src=src,
                    dst=dst,
                    negated=negated,
                    merge=dst in self.aggregated,
                    stratum=self.stratum_of.get(dst, -1),
                )
            )

        #: Delta sources: EDB predicates, plus any predicate facts can be
        #: staged into (non-IDB predicates rules never mention behave like
        #: EDB at runtime; they simply have no outgoing edges here).
        self.delta_sources: frozenset[str] = self.edb
        #: Everything an EDB delta can reach (sources included).
        reach: set[str] = set(self.edb)
        for pred in self.edb:
            reach |= self._closure(pred)
        self.delta_reachable: frozenset[str] = frozenset(reach)

        #: Predicates that can ever hold tuples: EDB predicates plus the
        #: fixpoint of rules whose *positive* body literals are all
        #: possibly-nonempty (a rule with no positive literals — a static
        #: fact or a pure-negation rule — can always fire).  Kernel binding
        #: uses this: a rule joining a forever-empty relation can never
        #: enumerate anything, so its kernels need not be compiled.
        possibly: set[str] = set(self.edb)
        changed = True
        while changed:
            changed = False
            for rule in program.rules:
                if rule.head.pred in possibly:
                    continue
                if all(
                    lit.pred in possibly for lit in rule.positive_literals()
                ):
                    possibly.add(rule.head.pred)
                    changed = True
        self.possibly_nonempty_preds: frozenset[str] = frozenset(possibly)

        #: Lazily filled forward-closure cache: EDB pred -> affected preds.
        self._impact_cache: dict[str, frozenset[str]] = {}

    # -- core queries ------------------------------------------------------

    def _closure(self, pred: str) -> set[str]:
        """Forward closure of ``pred`` over the dependency edges (``pred``
        itself excluded unless it is on a cycle)."""
        seen: set[str] = set()
        stack = list(self._successors.get(pred, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._successors.get(node, ()))
        return seen

    def affected_predicates(self, pred: str) -> frozenset[str]:
        """IDB predicates a delta to ``pred`` can possibly affect."""
        cached = self._impact_cache.get(pred)
        if cached is None:
            cached = self._impact_cache[pred] = frozenset(self._closure(pred))
        return cached

    def affected_rules(self, pred: str) -> list[Rule]:
        """Rules whose derivations a delta to ``pred`` can possibly change."""
        out: list[Rule] = []
        for head in sorted(self.affected_predicates(pred)):
            out.extend(self._rules_by_head.get(head, ()))
        return out

    def affected_strata(self, pred: str) -> frozenset[int]:
        """Component indices a delta to ``pred`` can possibly affect."""
        return frozenset(
            self.stratum_of[p]
            for p in self.affected_predicates(pred)
            if p in self.stratum_of
        )

    def possibly_nonempty(self, pred: str) -> bool:
        """Can ``pred`` ever hold a tuple (so deltas on it can exist)?"""
        return pred in self.possibly_nonempty_preds

    def rule_viable(self, rule: Rule) -> bool:
        """Can ``rule`` ever enumerate a satisfying substitution?  False iff
        some positive body literal reads a forever-empty predicate — then
        every join through it is empty and the rule's kernels need never be
        compiled.  (Negated literals do not constrain viability: an absent
        atom satisfies them.)"""
        return all(
            lit.pred in self.possibly_nonempty_preds
            for lit in rule.positive_literals()
        )

    def footprint(self, touched: Iterable[str]) -> Footprint:
        """The program slice one batch touching ``touched`` can affect.

        Unknown predicates (facts staged into relations no rule reads)
        contribute nothing — they have no outgoing edges.  The result is
        component-closed by construction (SCC strong connectivity), so
        engines may skip whole strata outside ``strata`` without visiting
        them at all.
        """
        touched_set = frozenset(touched)
        predicates: set[str] = set(touched_set)
        for pred in touched_set:
            predicates |= self.affected_predicates(pred)
        strata = frozenset(
            self.stratum_of[p] for p in predicates if p in self.stratum_of
        )
        return Footprint(
            touched=touched_set,
            predicates=frozenset(predicates),
            strata=strata,
            lattice_merges=frozenset(predicates & self.aggregated),
            strata_total=self.strata_total,
        )

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """The ``repro check --impact`` payload (docs/check_schema.json)."""
        per_edb = {}
        for pred in sorted(self.edb):
            affected = self.affected_predicates(pred)
            per_edb[pred] = {
                "predicates": sorted(affected),
                "rules": len(self.affected_rules(pred)),
                "strata": sorted(self.affected_strata(pred)),
                "lattice_merges": sorted(affected & self.aggregated),
            }
        return {
            "strata_total": self.strata_total,
            "edb": per_edb,
            "delta_reachable": sorted(self.delta_reachable),
            "unreachable_rules": sum(
                1
                for rules in self._rules_by_head.values()
                for rule in rules
                if rule.body_literals()
                and not any(
                    lit.pred in self.delta_reachable
                    for lit in rule.body_literals()
                )
            ),
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "negated": e.negated,
                    "merge": e.merge,
                    "stratum": e.stratum,
                }
                for e in self.edges
            ],
        }


__all__ = ["Footprint", "ImpactEdge", "ImpactIndex"]
