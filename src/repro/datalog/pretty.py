"""Pretty printing of programs, rules, and relation contents.

The AST ``__repr__`` methods already produce readable single-rule text;
this module adds whole-program rendering and tabular relation dumps used by
examples and debugging output.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .program import Program
from .stratify import stratify


def format_program(program: Program) -> str:
    """Render the rules of a program as Datalog-ish source text."""
    lines = [repr(rule) for rule in program.rules]
    if program.exports is not None:
        lines.append(".export " + ", ".join(sorted(program.exports)) + ".")
    return "\n".join(lines)


def format_strata(program: Program) -> str:
    """Render the dependency components bottom-up with their rules."""
    blocks = []
    for component in stratify(program):
        kind = "recursive" if component.recursive else "non-recursive"
        extras = []
        if component.aggregated:
            extras.append("aggregates " + ", ".join(sorted(component.aggregated)))
        suffix = f" ({', '.join([kind] + extras)})"
        header = f"-- component #{component.index}{suffix}"
        body = "\n".join("  " + repr(rule) for rule in component.rules)
        blocks.append(header + ("\n" + body if body else ""))
    return "\n".join(blocks)


def format_relation(
    name: str, tuples: Iterable[tuple], limit: int | None = None
) -> str:
    """Render a relation as sorted ``name(a, b, c)`` lines."""
    rows = sorted(tuples, key=repr)
    shown = rows if limit is None else rows[:limit]
    lines = [f"{name}({', '.join(repr(v) for v in row)})" for row in shown]
    if limit is not None and len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more)")
    return "\n".join(lines)


def format_relations(
    relations: Mapping[str, Iterable[tuple]], limit: int | None = None
) -> str:
    """Render several relations, alphabetically, with counts."""
    blocks = []
    for name in sorted(relations):
        rows = list(relations[name])
        header = f"== {name} ({len(rows)} tuples) =="
        blocks.append(header + "\n" + format_relation(name, rows, limit=limit))
    return "\n\n".join(blocks)
