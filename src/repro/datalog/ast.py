"""Abstract syntax of Datalog with lattice aggregation.

A rule is ``head :- body`` where the body mixes:

* positive and negated relational literals,
* ``Eval`` atoms ``X := fn(args)`` binding a fresh variable to the result of
  a registered function (the paper's expression evaluation, e.g.
  ``lat = O(obj)`` in Figure 1),
* ``Test`` atoms — boolean filters over bound variables (comparisons and
  arbitrary registered predicates).

Aggregation is expressed in the *head*: exactly one argument position may be
an :class:`AggTerm` ``op<Var>``, grouping on the remaining arguments —
mirroring Figure 1's ``PTlub(var, lub(lat)) :- PT(var, lat)``.

Terms are either :class:`Variable` or :class:`Constant`; constants carry
plain hashable Python values (which may be lattice elements).  Relation
tuples as stored by the solvers are tuples of such plain values.

All node classes are frozen **slots** dataclasses: AST terms are the
hottest per-tuple objects in the system (every compile-time specialization
and every interpreter probe walks them), and slots remove the per-instance
``__dict__`` — smaller and faster attribute access, while staying
picklable for checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open source region ``source:line:column .. end_line:end_column``.

    ``source`` names where the text came from (a file path, ``<string>`` for
    :func:`repro.datalog.parser.parse` on a literal, ``<builder>`` for rules
    assembled through the AST helper functions).  Lines and columns are
    1-based; a zero line means "no position" (synthetic nodes).
    """

    source: str = "<builder>"
    line: int = 0
    column: int = 0
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        if not self.line:
            return self.source
        return f"{self.source}:{self.line}:{self.column}"


#: The shared synthetic span attached (implicitly) to builder-made rules.
BUILDER_SPAN = Span()


def span_of(node: object) -> Span:
    """The node's span, or the synthetic ``<builder>`` span if it has none."""
    span = getattr(node, "span", None)
    if span is None and isinstance(node, Literal):
        span = node.atom.span
    return span if span is not None else BUILDER_SPAN


@dataclass(frozen=True, slots=True)
class Variable:
    """A logic variable.  Names starting with ``_`` are wildcards."""

    name: str

    def __repr__(self) -> str:
        return self.name

    @property
    def is_wildcard(self) -> bool:
        """True iff this variable is anonymous (joins nothing)."""
        return self.name.startswith("_")


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant term wrapping any hashable Python value."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Variable, Constant]


@dataclass(frozen=True, slots=True)
class AggTerm:
    """An aggregation slot ``op<Var>`` in a rule head.

    ``op`` names an :class:`repro.lattices.Aggregator` registered on the
    program; ``var`` is the aggregated (lattice-valued) body variable.
    """

    op: str
    var: Variable

    def __repr__(self) -> str:
        return f"{self.op}<{self.var.name}>"


HeadTerm = Union[Variable, Constant, AggTerm]


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``pred(t1, ..., tn)``.

    ``span`` (here and on the other node classes) records the source region
    the node was parsed from; it is excluded from equality/hash/repr so
    structurally identical rules from different positions stay equal.
    """

    pred: str
    args: tuple[Term, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.pred}({inner})"

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> set[Variable]:
        """The variables occurring in the arguments."""
        return {a for a in self.args if isinstance(a, Variable)}


@dataclass(frozen=True, slots=True)
class Literal:
    """A possibly negated relational body atom."""

    atom: Atom
    negated: bool = False

    def __repr__(self) -> str:
        return f"!{self.atom!r}" if self.negated else repr(self.atom)

    @property
    def pred(self) -> str:
        """The predicate name of the wrapped atom."""
        return self.atom.pred


@dataclass(frozen=True, slots=True)
class Eval:
    """``var := fn(args)`` — bind ``var`` to the value of a registered
    function applied to already-bound arguments."""

    var: Variable
    fn: str
    args: tuple[Term, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.var.name} := {self.fn}({inner})"


@dataclass(frozen=True, slots=True)
class Test:
    """``?fn(args)`` or a comparison — keep the binding iff ``fn`` holds."""

    __test__ = False  # not a pytest test class

    fn: str
    args: tuple[Term, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"?{self.fn}({inner})"


BodyItem = Union[Literal, Eval, Test]


@dataclass(frozen=True, slots=True)
class Head:
    """A rule head: predicate plus argument terms, at most one AggTerm."""

    pred: str
    args: tuple[HeadTerm, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.pred}({inner})"

    @property
    def arity(self) -> int:
        """Number of head argument positions."""
        return len(self.args)

    def agg_positions(self) -> list[int]:
        """Indexes of aggregation slots (at most one after validation)."""
        return [i for i, a in enumerate(self.args) if isinstance(a, AggTerm)]

    @property
    def agg_term(self) -> AggTerm | None:
        """The aggregation slot, if this head has one."""
        positions = self.agg_positions()
        if not positions:
            return None
        return self.args[positions[0]]

    @property
    def is_aggregation(self) -> bool:
        """True iff the head contains an aggregation slot."""
        return bool(self.agg_positions())

    def group_terms(self) -> tuple[Term, ...]:
        """The non-aggregated head terms (the aggregation group)."""
        return tuple(a for a in self.args if not isinstance(a, AggTerm))


@dataclass(frozen=True, slots=True)
class Rule:
    """``head :- body.``  A fact is a rule with an empty body and ground head."""

    head: Head
    body: tuple[BodyItem, ...] = field(default_factory=tuple)
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        inner = ", ".join(repr(b) for b in self.body)
        return f"{self.head!r} :- {inner}."

    @property
    def is_fact(self) -> bool:
        """True iff the rule has an empty body (a ground fact)."""
        return not self.body

    @property
    def is_aggregation(self) -> bool:
        """True iff the head aggregates (see :class:`AggTerm`)."""
        return self.head.is_aggregation

    def body_literals(self) -> list[Literal]:
        """All relational body atoms (positive and negated)."""
        return [b for b in self.body if isinstance(b, Literal)]

    def positive_literals(self) -> list[Literal]:
        """The positive relational body atoms."""
        return [b for b in self.body if isinstance(b, Literal) and not b.negated]

    def negative_literals(self) -> list[Literal]:
        """The negated relational body atoms."""
        return [b for b in self.body if isinstance(b, Literal) and b.negated]

    def head_variables(self) -> set[Variable]:
        """Variables the head mentions (including aggregated ones)."""
        out: set[Variable] = set()
        for arg in self.head.args:
            if isinstance(arg, Variable):
                out.add(arg)
            elif isinstance(arg, AggTerm):
                out.add(arg.var)
        return out

    def body_variables(self) -> set[Variable]:
        """Variables any body item mentions or binds."""
        out: set[Variable] = set()
        for item in self.body:
            if isinstance(item, Literal):
                out |= item.atom.variables()
            elif isinstance(item, Eval):
                out.add(item.var)
                out |= {a for a in item.args if isinstance(a, Variable)}
            elif isinstance(item, Test):
                out |= {a for a in item.args if isinstance(a, Variable)}
        return out


def var(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


def vars(names: str) -> tuple[Variable, ...]:
    """Split a whitespace-separated name list into variables:
    ``V, O, M = vars("V O M")``."""
    return tuple(Variable(n) for n in names.split())


def const(value: object) -> Constant:
    """Shorthand constructor for a constant term."""
    return Constant(value)


def _to_term(value: object) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


def atom(pred: str, *args: object) -> Literal:
    """Build a positive body literal; bare Python values become constants."""
    return Literal(Atom(pred, tuple(_to_term(a) for a in args)))


def negated(pred: str, *args: object) -> Literal:
    """Build a negated body literal."""
    return Literal(Atom(pred, tuple(_to_term(a) for a in args)), negated=True)


def head(pred: str, *args: object) -> Head:
    """Build a rule head; bare Python values become constants and
    :class:`AggTerm` objects pass through."""
    out: list[HeadTerm] = []
    for a in args:
        if isinstance(a, AggTerm):
            out.append(a)
        else:
            out.append(_to_term(a))
    return Head(pred, tuple(out))


def agg(op: str, variable: Variable | str) -> AggTerm:
    """Build an aggregation head slot ``op<variable>``."""
    if isinstance(variable, str):
        variable = Variable(variable)
    return AggTerm(op, variable)


def let(variable: Variable | str, fn: str, *args: object) -> Eval:
    """Build an Eval body item ``variable := fn(args)``."""
    if isinstance(variable, str):
        variable = Variable(variable)
    return Eval(variable, fn, tuple(_to_term(a) for a in args))


def test(fn: str, *args: object) -> Test:
    """Build a Test body item ``?fn(args)``."""
    return Test(fn, tuple(_to_term(a) for a in args))
