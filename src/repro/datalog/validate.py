"""Static validation of programs against the paper's assumptions.

Since the static checker landed (:mod:`repro.datalog.check`,
docs/STATIC_CHECKS.md), this module is a thin wrapper: :func:`validate` runs
the structural passes — arity consistency, name resolution, aggregation
shape (ASM1.1), rule safety, stratified negation and aggregator agreement
(ASM3), and column-sort inference — and raises the first error-severity
:class:`Diagnostic` as a :class:`ValidationError` carrying the diagnostic
code and source span.  All four engines therefore report identical
diagnostics at load time, and the ``repro check`` CLI shows the same
findings (plus warnings, the deep ASM2 law checks, and the dead-rule slice)
without raising.

Eventual ⊑-monotonicity (ASM1.3) is a semantic property of the analysis the
developer promises (paper Section 4.3); the checker audits aggregation
paths structurally (DLC504) and the solvers' divergence guards exercise it
dynamically.
"""

from __future__ import annotations

from .check import CheckResult, check_program
from .errors import ValidationError
from .program import Program
from .stratify import Component


def validate(program: Program) -> list[Component]:
    """Validate a normalized program; returns its dependency components.

    Raises :class:`ValidationError` for the first error-severity diagnostic
    the static checker finds (in pass order, so messages match the historic
    ones).  Use :func:`repro.datalog.check.check_program` directly to get
    every finding, including warnings, at once.
    """
    return raise_on_error(check_program(program))


def raise_on_error(result: CheckResult) -> list[Component]:
    """Raise the first error diagnostic of ``result``; return components."""
    error = result.first_error
    if error is not None:
        raise ValidationError(error.message, code=error.code, span=error.span)
    if result.components is None:  # pragma: no cover - defensive
        raise ValidationError("program could not be stratified")
    return result.components
