"""Static validation of programs against the paper's assumptions.

Checks performed (on the *normalized* program):

* consistent predicate arities,
* rule safety — an admissible body order exists and head variables are bound,
* registered names — every ``Eval``/``Test``/aggregator name resolves,
* ASM3 stratified negation (via :func:`repro.datalog.stratify.stratify`),
* ASM3 aggregator agreement — all aggregators inside one dependency
  component share a single direction (a proxy for "agree on the same ⊑
  ordering direction per produced lattice"; we additionally require a single
  lattice per component's aggregations, which all paper analyses satisfy),
* ASM1.1 shape — aggregation rules aggregate a collecting relation
  (guaranteed by normalization; re-checked here),
* aggregated predicates are not also EDB inputs.

Eventual ⊑-monotonicity (ASM1.3) is a semantic property of the analysis the
developer promises (paper Section 4.3: "the analysis developer only has to
check that for each non-⊑-monotonic rule, another rule exists that will
eventually dominate the decrease"); it cannot be checked statically and is
exercised dynamically by the solvers' divergence guards.
"""

from __future__ import annotations

from .ast import Eval, Literal, Test
from .errors import ValidationError
from .planning import plan_body
from .program import Program
from .stratify import Component, stratify


def validate(program: Program) -> list[Component]:
    """Validate a normalized program; returns its dependency components."""
    program.arities()
    _check_names(program)
    _check_safety(program)
    components = stratify(program)  # raises on non-stratified negation
    _check_aggregation(program, components)
    return components


def _check_names(program: Program) -> None:
    for rule in program.rules:
        for item in rule.body:
            if isinstance(item, Eval) and item.fn not in program.functions:
                raise ValidationError(
                    f"unknown function {item.fn!r} in {rule!r}; register it "
                    f"with program.register_function"
                )
            if isinstance(item, Test) and item.fn not in program.tests:
                raise ValidationError(
                    f"unknown test {item.fn!r} in {rule!r}; register it "
                    f"with program.register_test"
                )
        agg = rule.head.agg_term
        if agg is not None and agg.op not in program.aggregators:
            raise ValidationError(
                f"unknown aggregator {agg.op!r} in {rule!r}; register it "
                f"with program.register_aggregator"
            )


def _check_safety(program: Program) -> None:
    for rule in program.rules:
        plan_body(rule)  # raises ValidationError if unsafe


def _check_aggregation(program: Program, components: list[Component]) -> None:
    edb = program.edb_predicates()
    for component in components:
        directions = set()
        lattices = set()
        for rule in component.rules:
            agg = rule.head.agg_term
            if agg is None:
                continue
            if len(rule.head.agg_positions()) != 1:
                raise ValidationError(
                    f"{rule!r}: exactly one aggregation slot per head"
                )
            if len(rule.body) != 1 or not isinstance(rule.body[0], Literal):
                raise ValidationError(
                    f"{rule!r}: aggregation must consume a single collecting "
                    f"relation (run normalize() first)"
                )
            aggregator = program.aggregators[agg.op]
            directions.add(aggregator.direction)
            lattices.add(aggregator.lattice)
            if rule.head.pred in edb:
                raise ValidationError(
                    f"aggregated predicate {rule.head.pred} cannot be an "
                    f"input relation"
                )
        if len(directions) > 1:
            raise ValidationError(
                f"component {sorted(component.predicates)} mixes aggregation "
                f"directions {sorted(directions)} (ASM3)"
            )
        if component.recursive and len(lattices) > 1:
            raise ValidationError(
                f"component {sorted(component.predicates)} aggregates over "
                f"multiple lattices {sorted(l.name for l in lattices)}; "
                f"use one produced lattice per recursive component (ASM3)"
            )
