"""Normalization passes run before solving.

Two passes, both semantics-preserving:

* :func:`rename_wildcards_apart` — every occurrence of the anonymous
  variable ``_`` becomes a fresh variable so accidental joins cannot happen.
  (The text parser already does this; the pass covers builder-made rules.)

* :func:`factor_aggregations` — rewrite every aggregation rule so that its
  body is a single positive literal over a *collecting relation*
  (ASM1.1: "each predicate in [the cut] is the aggregation of a collecting
  relation").  ``P(g, op<V>) :- BODY`` becomes::

      P$collect(g, V) :- BODY.
      P(g, op<V>)     :- P$collect(g, V).

  Multiple aggregation rules for the same head feed the same collecting
  relation; the aggregation rule itself becomes unique.  Mixing aggregation
  and plain rules for one predicate is rejected.
"""

from __future__ import annotations

import itertools

from .ast import (
    AggTerm,
    Atom,
    Constant,
    Eval,
    Head,
    Literal,
    Rule,
    Term,
    Test,
    Variable,
    span_of,
)
from .errors import ValidationError
from .program import Program

COLLECT_SUFFIX = "$collect"


def collecting_name(pred: str) -> str:
    """Name of the auxiliary collecting relation for aggregated ``pred``."""
    return pred + COLLECT_SUFFIX


def rename_wildcards_apart(program: Program) -> Program:
    """Replace each occurrence of the variable ``_`` by a fresh variable."""
    counter = itertools.count()
    new_rules = []
    for rule in program.rules:
        new_rules.append(_rename_rule(rule, counter))
    program.rules = new_rules
    return program


def _rename_rule(rule: Rule, counter) -> Rule:
    def fix_term(term: Term) -> Term:
        if isinstance(term, Variable) and term.name == "_":
            return Variable(f"_a{next(counter)}")
        return term

    def fix_body(item):
        if isinstance(item, Literal):
            return Literal(
                Atom(
                    item.atom.pred,
                    tuple(fix_term(t) for t in item.atom.args),
                    span=item.atom.span,
                ),
                item.negated,
            )
        if isinstance(item, Eval):
            return Eval(
                item.var, item.fn,
                tuple(fix_term(t) for t in item.args),
                span=item.span,
            )
        if isinstance(item, Test):
            return Test(
                item.fn, tuple(fix_term(t) for t in item.args), span=item.span
            )
        return item

    head_args = []
    for arg in rule.head.args:
        if isinstance(arg, (Variable, Constant)):
            head_args.append(fix_term(arg))
        else:
            head_args.append(arg)
    return Rule(
        Head(rule.head.pred, tuple(head_args), span=rule.head.span),
        tuple(fix_body(b) for b in rule.body),
        span=rule.span,
    )


def factor_aggregations(program: Program) -> Program:
    """Ensure every aggregated predicate is defined by exactly one
    aggregation rule over a dedicated collecting relation."""
    by_pred: dict[str, list[Rule]] = {}
    for rule in program.rules:
        by_pred.setdefault(rule.head.pred, []).append(rule)

    new_rules: list[Rule] = []
    for pred, rules in by_pred.items():
        agg_rules = [r for r in rules if r.is_aggregation]
        if not agg_rules:
            new_rules.extend(rules)
            continue
        if len(agg_rules) != len(rules):
            plain = next(r for r in rules if not r.is_aggregation)
            raise ValidationError(
                f"predicate {pred} mixes aggregation and plain rules",
                code="DLC305",
                span=span_of(plain),
            )
        _check_consistent_aggregation(pred, agg_rules)

        first = agg_rules[0]
        if len(agg_rules) == 1 and _is_simple_collecting_body(first):
            new_rules.append(first)
            continue

        collect = collecting_name(pred)
        group_vars, agg_pos, agg_term = _head_shape(first)
        # One collecting rule per original aggregation rule.
        for rule in agg_rules:
            _, _, term = _head_shape(rule)
            collect_args: list[Term] = []
            for i, arg in enumerate(rule.head.args):
                if isinstance(arg, AggTerm):
                    collect_args.append(arg.var)
                else:
                    collect_args.append(arg)
            new_rules.append(
                Rule(
                    Head(collect, tuple(collect_args), span=rule.head.span),
                    rule.body,
                    span=rule.span,
                )
            )
        # A single canonical aggregation over the collecting relation.
        fresh = [Variable(f"G{i}") for i in range(len(first.head.args))]
        agg_head_args: list = []
        collect_body_args: list[Term] = []
        for i in range(len(first.head.args)):
            if i == agg_pos:
                agg_head_args.append(AggTerm(agg_term.op, fresh[i]))
            else:
                agg_head_args.append(fresh[i])
            collect_body_args.append(fresh[i])
        new_rules.append(
            Rule(
                Head(pred, tuple(agg_head_args), span=first.head.span),
                (Literal(Atom(collect, tuple(collect_body_args))),),
                span=first.span,
            )
        )
    program.rules = new_rules
    return program


def _is_simple_collecting_body(rule: Rule) -> bool:
    """True iff the aggregation rule's body is already a single positive
    literal and the head mentions only variables (a direct collecting shape)."""
    if len(rule.body) != 1:
        return False
    item = rule.body[0]
    if not isinstance(item, Literal) or item.negated:
        return False
    head_ok = all(
        isinstance(a, (Variable, AggTerm)) for a in rule.head.args
    )
    # Group variables must be distinct and the aggregated variable must not
    # double as a group variable; otherwise factoring is required to give
    # the aggregation machinery a plain (group..., value) collecting shape.
    seen: set[str] = set()
    for arg in rule.head.args:
        name = arg.var.name if isinstance(arg, AggTerm) else getattr(arg, "name", None)
        if name is None or name in seen:
            return False
        seen.add(name)
    return head_ok


def _head_shape(rule: Rule) -> tuple[list, int, AggTerm]:
    positions = rule.head.agg_positions()
    if len(positions) != 1:
        raise ValidationError(
            f"rule for {rule.head.pred} must have exactly one aggregation "
            f"slot, found {len(positions)}",
            code="DLC304",
            span=span_of(rule),
        )
    pos = positions[0]
    return list(rule.head.group_terms()), pos, rule.head.args[pos]


def _check_consistent_aggregation(pred: str, rules: list[Rule]) -> None:
    shapes = set()
    for rule in rules:
        positions = rule.head.agg_positions()
        if len(positions) != 1:
            raise ValidationError(
                f"rule for {pred} must have exactly one aggregation slot",
                code="DLC304",
                span=span_of(rule),
            )
        term = rule.head.args[positions[0]]
        shapes.add((rule.head.arity, positions[0], term.op))
    if len(shapes) != 1:
        raise ValidationError(
            f"aggregation rules for {pred} disagree on arity, slot, or "
            f"operator: {sorted(shapes)}",
            code="DLC306",
            span=span_of(rules[-1]),
        )


def normalize(program: Program) -> Program:
    """Run all normalization passes (in place; returns the program)."""
    rename_wildcards_apart(program)
    factor_aggregations(program)
    return program
