"""The :class:`Program` container: rules plus name registries.

A program owns:

* ``rules`` — the Datalog rules (facts included),
* ``functions`` — registered Python callables usable from ``Eval`` atoms,
* ``tests`` — registered Python predicates usable from ``Test`` atoms
  (a standard library of comparisons/arithmetic is pre-registered),
* ``aggregators`` — :class:`repro.lattices.Aggregator` objects by name,
* ``exports`` — predicates visible to downstream consumers (``Exp(D)`` in
  Section 6.1); defaults to every IDB predicate.

Predicates never appearing in any head are *extensional* (EDB): the solvers
take their tuples as input facts.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..lattices import Aggregator
from .ast import Rule
from .errors import ValidationError

#: Test predicates every program understands out of the box.
BUILTIN_TESTS: dict[str, Callable[..., bool]] = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
}

#: Functions every program understands out of the box.
BUILTIN_FUNCTIONS: dict[str, Callable] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "neg": operator.neg,
    "min": min,
    "max": max,
    "id": lambda x: x,
    "pair": lambda a, b: (a, b),
    "first": lambda p: p[0],
    "second": lambda p: p[1],
}


@dataclass
class Program:
    """An analysis specification: rules plus the registries they reference."""

    rules: list[Rule] = field(default_factory=list)
    functions: dict[str, Callable] = field(default_factory=dict)
    tests: dict[str, Callable[..., bool]] = field(default_factory=dict)
    aggregators: dict[str, Aggregator] = field(default_factory=dict)
    exports: set[str] | None = None

    def __post_init__(self) -> None:
        self.functions = {**BUILTIN_FUNCTIONS, **self.functions}
        self.tests = {**BUILTIN_TESTS, **self.tests}

    # -- registries ------------------------------------------------------

    def register_function(self, name: str, fn: Callable) -> "Program":
        self.functions[name] = fn
        return self

    def register_test(self, name: str, fn: Callable[..., bool]) -> "Program":
        self.tests[name] = fn
        return self

    def register_aggregator(self, name: str, aggregator: Aggregator) -> "Program":
        self.aggregators[name] = aggregator
        return self

    # -- predicate classification ----------------------------------------

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one rule head."""
        return {rule.head.pred for rule in self.rules}

    def edb_predicates(self) -> set[str]:
        """Predicates only ever used in bodies — the input relations."""
        used: set[str] = set()
        for rule in self.rules:
            for literal in rule.body_literals():
                used.add(literal.pred)
        return used - self.idb_predicates()

    def all_predicates(self) -> set[str]:
        used: set[str] = set()
        for rule in self.rules:
            used.add(rule.head.pred)
            for literal in rule.body_literals():
                used.add(literal.pred)
        return used

    def exported_predicates(self) -> set[str]:
        """``Exp`` — what downstream consumers may observe."""
        if self.exports is None:
            return self.idb_predicates()
        return set(self.exports)

    def arities(self) -> dict[str, int]:
        """Predicate arities; raises if a predicate is used inconsistently."""
        seen: dict[str, int] = {}

        def check(pred: str, arity: int) -> None:
            if pred in seen and seen[pred] != arity:
                raise ValidationError(
                    f"predicate {pred} used with arities {seen[pred]} and {arity}"
                )
            seen[pred] = arity

        for rule in self.rules:
            check(rule.head.pred, rule.head.arity)
            for literal in rule.body_literals():
                check(literal.pred, literal.atom.arity)
        return seen

    def rules_for(self, pred: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.head.pred == pred]

    # -- construction helpers --------------------------------------------

    def add_rule(self, rule: Rule) -> "Program":
        self.rules.append(rule)
        return self

    def extend(self, rules: Iterable[Rule]) -> "Program":
        self.rules.extend(rules)
        return self

    def copy(self) -> "Program":
        clone = Program(
            rules=list(self.rules),
            exports=None if self.exports is None else set(self.exports),
        )
        clone.functions = dict(self.functions)
        clone.tests = dict(self.tests)
        clone.aggregators = dict(self.aggregators)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Program with {len(self.rules)} rules>"
