"""A hand-rolled lexer and recursive-descent parser for Datalog text.

Grammar (informal)::

    program   := (directive | rule)*
    directive := ".export" IDENT ("," IDENT)* "."
    rule      := head (":-" body)? "."
    head      := IDENT "(" headterm ("," headterm)* ")"
    headterm  := IDENT "<" VAR ">"          -- aggregation slot, e.g. lub<L>
               | term
    body      := bodyitem ("," bodyitem)*
    bodyitem  := "!" atom                   -- negated literal
               | VAR ":=" IDENT "(" terms ")"   -- Eval
               | "?" IDENT "(" terms ")"    -- Test
               | term CMP term              -- comparison sugar (lt/le/...)
               | atom
    term      := VAR | NUMBER | STRING | IDENT   -- bare idents are symbols

Identifiers starting with an uppercase letter or ``_`` are variables
(Prolog convention); ``_`` alone is a wildcard and is renamed apart.
Comments run from ``//`` or ``#`` to end of line.  String literals accept
the usual backslash escapes (``\\n \\t \\r \\\\ \\' \\" \\xHH \\uHHHH
\\UHHHHHHHH``), so any string constant the pretty printer emits via Python
``repr`` lexes back to the same value.

Every parsed rule (and its head, atoms, Evals, and Tests) carries a
:class:`repro.datalog.ast.Span` recording where in the source it came from;
static diagnostics (:mod:`repro.datalog.check`) and validation errors cite
these positions.  Predicates used with conflicting arities are rejected at
parse time — catching the typo at its source line instead of surfacing later
as a confusing relation-store error.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .ast import (
    AggTerm,
    Atom,
    Constant,
    Eval,
    Head,
    HeadTerm,
    Literal,
    Rule,
    Span,
    Term,
    Test,
    Variable,
)
from .errors import ParseError
from .program import Program

_SYMBOLS = [":-", ":=", "<=", ">=", "==", "!=", "(", ")", ",", ".", "!", "?", "<", ">"]
_COMPARISONS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}

#: Single-character escape sequences inside string literals.
_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


@dataclass(frozen=True)
class _Token:
    kind: str  # IDENT, VAR, NUMBER, STRING, SYM, EOF
    text: str
    line: int
    column: int


class _Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[_Token]:
        out = []
        while True:
            token = self._next()
            out.append(token)
            if token.kind == "EOF":
                return out

    def _advance(self, n: int) -> None:
        for ch in self.source[self.pos : self.pos + n]:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n

    def _next(self) -> _Token:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance(1)
            elif ch == "#" or src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance(1)
            else:
                break
        if self.pos >= len(src):
            return _Token("EOF", "", self.line, self.column)

        line, column = self.line, self.column
        ch = src[self.pos]

        if ch in "\"'":
            quote = ch
            parts: list[str] = []
            end = self.pos + 1
            while True:
                if end >= len(src) or src[end] == "\n":
                    raise ParseError("unterminated string", line, column)
                if src[end] == quote:
                    break
                if src[end] == "\\":
                    if end + 1 >= len(src):
                        raise ParseError("unterminated string", line, column)
                    esc = src[end + 1]
                    if esc in _ESCAPES:
                        parts.append(_ESCAPES[esc])
                        end += 2
                        continue
                    width = {"x": 2, "u": 4, "U": 8}.get(esc)
                    if width is None:
                        raise ParseError(
                            f"unknown string escape \\{esc}", line, column
                        )
                    digits = src[end + 2 : end + 2 + width]
                    try:
                        if len(digits) != width:
                            raise ValueError
                        parts.append(chr(int(digits, 16)))
                    except ValueError:
                        raise ParseError(
                            f"bad \\{esc} escape in string", line, column
                        ) from None
                    end += 2 + width
                    continue
                parts.append(src[end])
                end += 1
            self._advance(end + 1 - self.pos)
            return _Token("STRING", "".join(parts), line, column)

        if ch.isdigit() or (
            ch == "-" and self.pos + 1 < len(src) and src[self.pos + 1].isdigit()
        ):
            end = self.pos + 1
            while end < len(src) and (src[end].isdigit() or src[end] == "."):
                # A "." only continues the number if followed by a digit,
                # so rule-terminating periods lex correctly after numbers.
                if src[end] == "." and not (end + 1 < len(src) and src[end + 1].isdigit()):
                    break
                end += 1
            text = src[self.pos : end]
            self._advance(end - self.pos)
            return _Token("NUMBER", text, line, column)

        if ch.isalpha() or ch == "_":
            end = self.pos
            while end < len(src) and (src[end].isalnum() or src[end] in "_$"):
                end += 1
            text = src[self.pos : end]
            self._advance(end - self.pos)
            kind = "VAR" if (text[0].isupper() or text[0] == "_") else "IDENT"
            return _Token(kind, text, line, column)

        for sym in _SYMBOLS:
            if src.startswith(sym, self.pos):
                self._advance(len(sym))
                return _Token("SYM", sym, line, column)

        raise ParseError(f"unexpected character {ch!r}", line, column)


class _Parser:
    def __init__(self, tokens: list[_Token], source_name: str = "<string>"):
        self.tokens = tokens
        self.source_name = source_name
        self.index = 0
        self._wildcards = itertools.count()
        # pred -> (arity, first token seen); rejects conflicting re-use at
        # parse time instead of surfacing later as a relation-store error.
        self._arities: dict[str, tuple[int, _Token]] = {}

    def _span(self, start: _Token, end: _Token | None = None) -> Span:
        last = end if end is not None else start
        return Span(
            self.source_name,
            start.line,
            start.column,
            last.line,
            last.column + max(len(last.text), 1) - 1,
        )

    def _note_arity(self, name: _Token, arity: int) -> None:
        seen = self._arities.get(name.text)
        if seen is None:
            self._arities[name.text] = (arity, name)
            return
        if seen[0] != arity:
            first = seen[1]
            where = (
                f"at line {first.line}, column {first.column}"
                if first.line
                else "by an existing rule"
            )
            raise ParseError(
                f"predicate {name.text} used with arity {arity} but "
                f"declared with arity {seen[0]} {where}",
                name.line,
                name.column,
            )

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def _take(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._take()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return token

    def _at_sym(self, text: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == "SYM" and token.text == text

    # -- grammar -----------------------------------------------------------

    def parse_program(self, program: Program) -> Program:
        while self._peek().kind != "EOF":
            if self._at_sym("."):
                self._parse_directive(program)
            else:
                program.add_rule(self._parse_rule())
        return program

    def _parse_directive(self, program: Program) -> None:
        self._expect("SYM", ".")
        keyword = self._expect("IDENT")
        if keyword.text != "export":
            raise ParseError(
                f"unknown directive .{keyword.text}", keyword.line, keyword.column
            )
        names = [self._expect("IDENT").text]
        while self._at_sym(","):
            self._take()
            names.append(self._expect("IDENT").text)
        self._expect("SYM", ".")
        if program.exports is None:
            program.exports = set()
        program.exports.update(names)

    def _parse_rule(self) -> Rule:
        start = self._peek()
        head = self._parse_head()
        body: tuple = ()
        if self._at_sym(":-"):
            self._take()
            items = [self._parse_body_item()]
            while self._at_sym(","):
                self._take()
                items.append(self._parse_body_item())
            body = tuple(items)
        stop = self._expect("SYM", ".")
        return Rule(head, body, span=self._span(start, stop))

    def _parse_head(self) -> Head:
        name = self._expect("IDENT")
        self._expect("SYM", "(")
        args: list[HeadTerm] = [self._parse_head_term()]
        while self._at_sym(","):
            self._take()
            args.append(self._parse_head_term())
        stop = self._expect("SYM", ")")
        self._note_arity(name, len(args))
        return Head(name.text, tuple(args), span=self._span(name, stop))

    def _parse_head_term(self) -> HeadTerm:
        # "op<Var>" — aggregation slot.
        if self._peek().kind == "IDENT" and self._at_sym("<", 1):
            op = self._take().text
            self._take()  # "<"
            variable = self._expect("VAR")
            self._expect("SYM", ">")
            return AggTerm(op, Variable(variable.text))
        return self._parse_term()

    def _parse_body_item(self):
        if self._at_sym("!"):
            self._take()
            return Literal(self._parse_atom(), negated=True)
        if self._at_sym("?"):
            mark = self._take()
            name = self._expect("IDENT")
            args = self._parse_paren_terms()
            return Test(name.text, args, span=self._span(mark, name))
        if self._peek().kind == "VAR" and self._at_sym(":=", 1):
            variable = self._take()
            self._take()  # ":="
            name = self._expect("IDENT")
            args = self._parse_paren_terms()
            return Eval(
                Variable(variable.text), name.text, args,
                span=self._span(variable, name),
            )
        # Comparison sugar: term CMP term.
        if self._looks_like_comparison():
            mark = self._peek()
            left = self._parse_term()
            op = self._take()
            right = self._parse_term()
            return Test(
                _COMPARISONS[op.text], (left, right), span=self._span(mark, op)
            )
        return Literal(self._parse_atom())

    def _looks_like_comparison(self) -> bool:
        token = self._peek()
        if token.kind in ("VAR", "NUMBER", "STRING"):
            nxt = self._peek(1)
            return nxt.kind == "SYM" and nxt.text in _COMPARISONS
        return False

    def _parse_atom(self) -> Atom:
        name = self._expect("IDENT")
        args = self._parse_paren_terms()
        self._note_arity(name, len(args))
        return Atom(name.text, args, span=self._span(name))

    def _parse_paren_terms(self) -> tuple[Term, ...]:
        self._expect("SYM", "(")
        if self._at_sym(")"):
            self._take()
            return ()
        args = [self._parse_term()]
        while self._at_sym(","):
            self._take()
            args.append(self._parse_term())
        self._expect("SYM", ")")
        return tuple(args)

    def _parse_term(self) -> Term:
        token = self._take()
        if token.kind == "VAR":
            if token.text == "_":
                return Variable(f"_w{next(self._wildcards)}")
            return Variable(token.text)
        if token.kind == "NUMBER":
            value = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind == "STRING":
            return Constant(token.text)
        if token.kind == "IDENT":
            return Constant(token.text)  # bare symbol constant
        raise ParseError(
            f"expected a term, found {token.text or token.kind!r}",
            token.line,
            token.column,
        )


def parse(
    source: str,
    program: Program | None = None,
    source_name: str = "<string>",
) -> Program:
    """Parse Datalog source text into a (new or existing) :class:`Program`.

    Registered functions, tests, and aggregators are *not* part of the text;
    register them on the program before or after parsing.  ``source_name``
    labels the :class:`Span` attached to every parsed rule (e.g. a file
    path).  Predicates used with conflicting arities — against each other or
    against rules already on ``program`` — raise :class:`ParseError` at the
    offending position.
    """
    if program is None:
        program = Program()
    tokens = _Lexer(source).tokens()
    parser = _Parser(tokens, source_name=source_name)
    # Seed arities from the existing program so incremental parses stay
    # consistent with rules added through the builder API.
    anchor = _Token("IDENT", "", 0, 0)
    for rule in program.rules:
        for atom_like in [rule.head, *(lit.atom for lit in rule.body_literals())]:
            parser._arities.setdefault(atom_like.pred, (atom_like.arity, anchor))
    return parser.parse_program(program)
