"""Error hierarchy for the Datalog front end and solvers."""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for every front-end and solver error."""


class ParseError(DatalogError):
    """Syntax error in Datalog source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ValidationError(DatalogError):
    """The program violates a structural assumption (safety, stratification,
    ASM1–ASM3, unresolved aggregator or function names, ...).

    ``code`` carries the diagnostic code of the corresponding static check
    (see docs/STATIC_CHECKS.md) and ``span`` the offending rule's source
    position; both are optional for callers raising ad hoc."""

    def __init__(self, message: str, *, code: str | None = None, span=None):
        #: The message without the span prefix (for re-wrapping).
        self.raw_message = message
        if span is not None and getattr(span, "line", 0):
            message = f"{span}: {message}"
        super().__init__(message)
        self.code = code
        self.span = span


class SolverError(DatalogError):
    """Runtime failure inside a solver (divergence guard, bad input facts)."""


class BudgetExceededError(SolverError):
    """A fixpoint watchdog tripped: iteration ceiling, wall-clock deadline,
    or a strictly-ascending aggregation chain exceeded its budget.

    Raised *instead of hanging* on diverging (non-Noetherian / non-monotone)
    analyses; see docs/ROBUSTNESS.md."""


class InvariantViolationError(SolverError):
    """A runtime self-check found corrupted engine state.

    Carries a ``dump`` dict with engine, component, and the violated
    invariant — enough to file a reproducible bug instead of silently
    propagating corruption into downstream strata."""

    def __init__(self, message: str, dump: dict | None = None):
        super().__init__(message)
        self.dump = dump or {}


class CheckpointError(SolverError):
    """A checkpoint file is corrupt, truncated, version-mismatched, or was
    taken from a different program/engine than the one loading it."""


class RollbackError(SolverError):
    """A guarded update failed and was rolled back to the pre-update state.

    The original failure is chained as ``__cause__``; the solver is left
    bit-equal to its state before the update was attempted."""


class ServiceError(SolverError):
    """A service-layer request was invalid or hit a closed/unknown session.

    Raised by :mod:`repro.service` for protocol-level failures (bad request
    shape, unknown session or predicate, operations on a closed session);
    the offending request gets an error response, the session — and every
    other session on the server — keeps serving."""


class WorkerCrashError(ServiceError):
    """A cluster worker process died (exit, signal, unresponsive past its
    liveness deadline) while requests were outstanding on it.

    The supervisor restarts the worker and recovers its sessions from
    their latest checkpoints plus the front-end op journal; dispatchers
    see this error internally and either resume from the replay outcome
    or retry against the replacement worker.  It only escapes to a client
    (or the CLI, exit code 8) when recovery itself fails."""


class RetryExhaustedError(ServiceError):
    """A routed request failed on every attempt the retry policy allows.

    Each attempt hit a crashed worker, a per-request timeout, or an
    injected dispatch fault, with capped exponential backoff between
    attempts; the last failure is chained as ``__cause__``.  CLI exit
    code 9 (docs/ROBUSTNESS.md)."""


class OverloadedError(ServiceError):
    """A worker's bounded in-flight queue is full; the request was
    rejected *before* dispatch rather than silently queued or dropped.

    Clients receive a typed ``overloaded`` error response and should back
    off and resend; nothing about the session changed."""


class ShutdownRequested(DatalogError):
    """A termination signal (SIGINT/SIGTERM) asked the process to stop.

    Long-running commands (``serve``, ``analyze``, ``bench``) convert the
    signal into this exception so they can unwind cleanly — drain in-flight
    batches, flush ``--profile-json`` metrics — and exit with the documented
    interrupt code instead of a traceback (docs/SERVICE.md)."""
