"""Error hierarchy for the Datalog front end and solvers."""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for every front-end and solver error."""


class ParseError(DatalogError):
    """Syntax error in Datalog source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ValidationError(DatalogError):
    """The program violates a structural assumption (safety, stratification,
    ASM1–ASM3, unresolved aggregator or function names, ...)."""


class SolverError(DatalogError):
    """Runtime failure inside a solver (divergence guard, bad input facts)."""
