"""Body planning: order body items so evaluation is well-defined.

All engines evaluate rule bodies left to right, binding variables as they
go.  :func:`plan_body` reorders the body so that:

* positive literals come in a greedy most-bound-first order (a simple join
  heuristic that prefers atoms sharing variables with what is already bound),
* ``Eval`` atoms run as soon as their arguments are bound,
* ``Test`` atoms and negated literals run as soon as their arguments are
  bound (negation is safe only on fully bound atoms).

``pinned`` pins one chosen positive-literal occurrence first — the *delta*
position used by semi-naïve and incremental evaluation (see
:func:`delta_plans` / :func:`delta_occurrences`).

Both raise :class:`ValidationError` if no admissible order exists
(an unbound Eval argument, unsafe negation, ...).

When a *cardinality oracle* (``pred -> live size``) is supplied, positive
literals are instead chosen by estimated enumeration cost — the most
selective literal is probed first.  The estimate is the classic
``size ** (1 - bound/arity)`` reduction: each bound column is assumed to
cut the relation by one uniform factor.  Without an oracle the original
greedy most-bound-first order is used, so plans stay stable for callers
that do not care about cardinalities.
"""

from __future__ import annotations

from typing import Callable

from .ast import BodyItem, Constant, Eval, Literal, Rule, Test, Variable
from .errors import ValidationError

#: Maps a predicate name to its current tuple count.
CardinalityOracle = Callable[[str], int]


def _term_vars(args) -> set[Variable]:
    return {a for a in args if isinstance(a, Variable)}


def _ready(item: BodyItem, bound: set[Variable]) -> bool:
    if isinstance(item, Literal):
        if item.negated:
            return _term_vars(item.atom.args) <= bound
        return True  # a positive literal can always be scanned
    if isinstance(item, Eval):
        return _term_vars(item.args) <= bound
    if isinstance(item, Test):
        return _term_vars(item.args) <= bound
    raise TypeError(f"unknown body item {item!r}")


def _binds(item: BodyItem) -> set[Variable]:
    if isinstance(item, Literal) and not item.negated:
        return _term_vars(item.atom.args)
    if isinstance(item, Eval):
        return {item.var}
    return set()


def _overlap(item: BodyItem, bound: set[Variable]) -> int:
    if isinstance(item, Literal):
        return len(_term_vars(item.atom.args) & bound)
    return 0


def _estimated_cost(
    item: Literal, bound: set[Variable], oracle: CardinalityOracle
) -> float:
    """Estimated rows enumerated when probing ``item`` with ``bound`` known.

    Each bound column (constant or already-bound variable) is one uniform
    selectivity factor: ``size ** (1 - bound_cols/arity)``.  A fully bound
    probe costs ~1 (membership check); a full scan costs ``size``.
    """
    size = oracle(item.pred)
    if size <= 1:
        return float(max(size, 0))
    args = item.atom.args
    if not args:
        return float(size)
    bound_cols = sum(
        1
        for a in args
        if isinstance(a, Constant) or (isinstance(a, Variable) and a in bound)
    )
    if bound_cols >= len(args):
        return 1.0
    return float(size) ** (1.0 - bound_cols / len(args))


def plan_body(
    rule: Rule,
    pinned: int | None = None,
    initially_bound: set[Variable] | None = None,
    oracle: CardinalityOracle | None = None,
) -> list[BodyItem]:
    """Return the body items of ``rule`` in an admissible evaluation order.

    ``pinned`` (an index into ``rule.body``) forces that item first — it must
    be a relational literal.  ``initially_bound`` variables count as bound
    before the first item (used for head-bound re-derivation checks in
    DRed).  ``oracle`` switches positive-literal selection from greedy
    most-bound-first to cardinality-aware least-estimated-cost-first.
    Raises :class:`ValidationError` if no admissible order exists.
    """
    remaining = list(enumerate(rule.body))
    ordered: list[BodyItem] = []
    bound: set[Variable] = set(initially_bound or ())

    if pinned is not None:
        item = rule.body[pinned]
        if not isinstance(item, Literal):
            raise ValidationError(
                f"cannot pin non-relational body item {item!r} in {rule!r}"
            )
        # The pinned occurrence is instantiated from a ground (delta) tuple,
        # so its variables count as bound even when the literal is negated.
        ordered.append(item)
        bound |= _term_vars(item.atom.args)
        remaining = [(i, b) for i, b in remaining if i != pinned]

    while remaining:
        # Priority: ready Eval/Test/negation first (cheap filters), then the
        # positive literal sharing the most bound variables.
        filter_idx = next(
            (
                k
                for k, (_, item) in enumerate(remaining)
                if not _is_positive(item) and _ready(item, bound)
            ),
            None,
        )
        if filter_idx is not None:
            _, item = remaining.pop(filter_idx)
            ordered.append(item)
            bound |= _binds(item)
            continue
        positives = [
            (k, item) for k, (_, item) in enumerate(remaining) if _is_positive(item)
        ]
        if not positives:
            stuck = [item for _, item in remaining]
            raise ValidationError(
                f"no admissible body order for {rule!r}: unbound {stuck!r}"
            )
        if oracle is None:
            k, item = max(positives, key=lambda pair: _overlap(pair[1], bound))
        else:
            # Least estimated cost; ties broken by bound-variable overlap,
            # then original body position (deterministic plans).
            k, item = min(
                positives,
                key=lambda pair: (
                    _estimated_cost(pair[1], bound, oracle),
                    -_overlap(pair[1], bound),
                    pair[0],
                ),
            )
        remaining.pop(k)
        ordered.append(item)
        bound |= _binds(item)

    _check_head_bound(rule, bound)
    return ordered


def _is_positive(item: BodyItem) -> bool:
    return isinstance(item, Literal) and not item.negated


def _check_head_bound(rule: Rule, bound: set[Variable]) -> None:
    unbound = {v for v in rule.head_variables() if v not in bound}
    if unbound:
        raise ValidationError(
            f"head variables {sorted(v.name for v in unbound)} of {rule!r} "
            f"are not bound by the body (unsafe rule)"
        )


def delta_occurrences(
    rule: Rule, include_negated: bool = False
) -> list[tuple[int, Literal]]:
    """The relational body occurrences eligible for delta pinning.

    Negated occurrences are included only on request (incremental engines
    need them: inserting into a negated relation *deletes* derivations and
    vice versa).
    """
    return [
        (i, item)
        for i, item in enumerate(rule.body)
        if isinstance(item, Literal) and (include_negated or not item.negated)
    ]


def delta_plans(
    rule: Rule,
    include_negated: bool = False,
    oracle: CardinalityOracle | None = None,
) -> list[tuple[int, list[BodyItem]]]:
    """One plan per relational body occurrence, pinned first.

    Semi-naïve and incremental evaluation instantiate the pinned occurrence
    with delta tuples and join the rest against full relations.
    """
    return [
        (i, plan_body(rule, pinned=i, oracle=oracle))
        for i, _item in delta_occurrences(rule, include_negated)
    ]
