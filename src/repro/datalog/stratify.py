"""Dependency components (strata) and their topological ordering.

Section 4.1: *"Laddder breaks up the analysis into dependency components
(sets of mutually recursive rules, also called strata in Datalog) and applies
rules according to a topological ordering of these components."*

We compute strongly connected components of the predicate dependency graph
with Tarjan's algorithm and return them bottom-up.  Each
:class:`Component` records its predicates, the rules defining them, the
upstream predicates it reads, and whether any dependency edge inside it is
negated (illegal) or crosses an aggregation (recursive aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Rule, span_of
from .errors import ValidationError
from .program import Program


@dataclass
class Component:
    """One dependency component, in bottom-up evaluation order."""

    index: int
    predicates: frozenset[str]
    rules: list[Rule]
    #: IDB/EDB predicates read from earlier components (timestamp-0 inputs).
    upstream: frozenset[str]
    #: True iff some predicate in the component depends on itself
    #: (possibly through others) — needs fixpoint iteration.
    recursive: bool
    #: Aggregated predicates defined inside this component.
    aggregated: frozenset[str]

    @property
    def has_aggregation(self) -> bool:
        return bool(self.aggregated)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preds = ",".join(sorted(self.predicates))
        return f"<Component #{self.index} {{{preds}}}>"


@dataclass
class _Graph:
    edges: dict[str, set[str]] = field(default_factory=dict)  # body -> heads
    negated_pairs: set[tuple[str, str]] = field(default_factory=set)

    def add_edge(self, src: str, dst: str, negated: bool) -> None:
        self.edges.setdefault(src, set()).add(dst)
        self.edges.setdefault(dst, set())
        if negated:
            self.negated_pairs.add((src, dst))


def _dependency_graph(program: Program) -> _Graph:
    graph = _Graph()
    idb = program.idb_predicates()
    for pred in idb:
        graph.edges.setdefault(pred, set())
    for rule in program.rules:
        for literal in rule.body_literals():
            if literal.pred in idb:
                graph.add_edge(literal.pred, rule.head.pred, literal.negated)
    return graph


def _tarjan(graph: _Graph) -> list[list[str]]:
    """Iterative Tarjan SCC; returns components in reverse topological order
    of the condensation (callers reverse it)."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    for root in sorted(graph.edges):
        if root in indices:
            continue
        work = [(root, iter(sorted(graph.edges[root])))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in indices:
                    indices[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.edges[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def stratify(program: Program) -> list[Component]:
    """Split ``program`` into dependency components in bottom-up order.

    Raises :class:`ValidationError` on non-stratified negation (a negated
    dependency inside a component), per ASM3.
    """
    graph = _dependency_graph(program)
    sccs = _tarjan(graph)

    # Tarjan emits components in reverse topological order of the
    # condensation; reversing yields bottom-up (dependencies first).
    sccs.reverse()

    member_of: dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for pred in scc:
            member_of[pred] = i

    for src, dst in sorted(graph.negated_pairs):
        if member_of.get(src) == member_of.get(dst):
            culprit = next(
                (
                    r for r in program.rules
                    if r.head.pred == dst
                    and any(l.negated and l.pred == src for l in r.body_literals())
                ),
                None,
            )
            raise ValidationError(
                f"negation inside a recursive component: !{src} feeds {dst} "
                f"(ASM3 requires stratified negation)",
                code="DLC301",
                span=span_of(culprit) if culprit is not None else None,
            )

    components: list[Component] = []
    for i, scc in enumerate(sccs):
        predicates = frozenset(scc)
        rules = [r for r in program.rules if r.head.pred in predicates]
        upstream: set[str] = set()
        recursive = False
        for rule in rules:
            for literal in rule.body_literals():
                if literal.pred in predicates:
                    recursive = True
                else:
                    upstream.add(literal.pred)
        if not recursive and len(scc) == 1:
            # A single predicate may still be self-recursive via a self-loop;
            # covered above.  Otherwise it's a non-recursive stratum.
            recursive = False
        aggregated = frozenset(
            rule.head.pred for rule in rules if rule.is_aggregation
        )
        components.append(
            Component(
                index=i,
                predicates=predicates,
                rules=rules,
                upstream=frozenset(upstream),
                recursive=recursive,
                aggregated=aggregated,
            )
        )
    return components
