"""Synthetic subject programs standing in for the Qualitas Corpus."""

from .generator import CorpusSpec, generate
from .presets import PRESETS, SUBJECT_ORDER, load_subject

__all__ = ["CorpusSpec", "PRESETS", "SUBJECT_ORDER", "generate", "load_subject"]
