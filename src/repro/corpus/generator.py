"""Seeded synthetic subject programs — the Qualitas Corpus stand-in.

The paper benchmarks against real Java code bases (minijavac, antlr, emma,
pmd, ant).  We cannot ship those, so this generator produces deterministic
Java-like programs with the structural features that actually drive the
three analyses (see DESIGN.md, substitutions):

* **Library layer** — utility classes with widely-called static helpers.
  High fan-in is what makes DRed's over-deletion hurt ("this shows up
  especially when frequently used library functions are affected") and
  stands in for the analyzed parts of the JRE.
* **Class hierarchies with virtual dispatch** — abstract bases with several
  overriding implementations, factory-style allocation patterns where one
  local receives objects of different classes (driving lub joins to
  ``C(cls)`` / k-set saturation, as in Figure 3).
* **Call-chain drivers** — static methods chaining from ``main`` for
  inter-procedural depth.
* **Numeric code** — literals, arithmetic, branches, and counter loops for
  the constant propagation and interval analyses (loops force widening).
* **Field traffic** — occasional stores/loads for heap flow.

Everything is drawn from ``random.Random(spec.seed)``: the same spec always
yields the identical program, so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..javalite.ast import JProgram
from ..javalite.builder import MethodBuilder, finalize, make_class

LITERAL_POOL = (0, 1, 2, 3, 5, 7, 10, 16, 42, 100, 255)
BINOPS = ("+", "-", "*")


@dataclass(frozen=True)
class CorpusSpec:
    """Size knobs for one synthetic subject program."""

    name: str
    seed: int
    hierarchies: int
    impls_per_hierarchy: int
    util_classes: int
    util_methods_per_class: int
    driver_methods: int
    stmts_per_method: int

    def scaled(self, factor: float) -> "CorpusSpec":
        """A proportionally resized copy (used for scaling experiments)."""

        def s(n: int) -> int:
            return max(1, round(n * factor))

        return CorpusSpec(
            name=f"{self.name}@{factor:g}x",
            seed=self.seed,
            hierarchies=s(self.hierarchies),
            impls_per_hierarchy=max(2, round(self.impls_per_hierarchy * factor)),
            util_classes=s(self.util_classes),
            util_methods_per_class=s(self.util_methods_per_class),
            driver_methods=s(self.driver_methods),
            stmts_per_method=max(4, round(self.stmts_per_method * factor)),
        )


class _BodyGenerator:
    """Generates one method body, tracking initialized locals."""

    def __init__(self, rng: random.Random, spec: CorpusSpec, context: "_Context"):
        self.rng = rng
        self.spec = spec
        self.ctx = context
        self.num_locals: list[str] = []
        self.obj_locals: dict[str, int] = {}  # local -> hierarchy index
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def ensure_numeric(self, m: MethodBuilder) -> str:
        if self.num_locals and self.rng.random() < 0.7:
            return self.rng.choice(self.num_locals)
        name = self.fresh("n")
        m.const(name, self.rng.choice(LITERAL_POOL))
        self.num_locals.append(name)
        return name

    def emit_statement(self, m: MethodBuilder) -> None:
        roll = self.rng.random()
        if roll < 0.22:
            name = self.fresh("n")
            m.const(name, self.rng.choice(LITERAL_POOL))
            self.num_locals.append(name)
        elif roll < 0.38:
            a = self.ensure_numeric(m)
            b = self.ensure_numeric(m)
            name = self.fresh("n")
            m.binop(name, self.rng.choice(BINOPS), a, b)
            self.num_locals.append(name)
        elif roll < 0.52:
            self._emit_allocation(m)
        elif roll < 0.62:
            self._emit_move(m)
        elif roll < 0.72:
            self._emit_vcall(m)
        elif roll < 0.80:
            self._emit_util_call(m)
        elif roll < 0.94:
            self._emit_field_traffic(m)
        elif roll < 0.97:
            self._emit_branch(m)
        else:
            self._emit_loop(m)

    def _emit_allocation(self, m: MethodBuilder) -> None:
        h = self.rng.randrange(self.spec.hierarchies)
        impl = self.rng.randrange(self.spec.impls_per_hierarchy)
        # Re-assigning an existing local of the same hierarchy creates the
        # Figure 3 factory pattern (one variable, several classes).
        same = [v for v, hh in self.obj_locals.items() if hh == h]
        if same and self.rng.random() < 0.4:
            var = self.rng.choice(same)
        else:
            var = self.fresh("o")
        m.new(var, self.ctx.impl_name(h, impl))
        self.obj_locals[var] = h

    def _emit_move(self, m: MethodBuilder) -> None:
        if not self.obj_locals:
            self._emit_allocation(m)
            return
        src = self.rng.choice(list(self.obj_locals))
        dst = self.fresh("o")
        m.move(dst, src)
        self.obj_locals[dst] = self.obj_locals[src]

    def _emit_vcall(self, m: MethodBuilder) -> None:
        if not self.obj_locals:
            self._emit_allocation(m)
        recv = self.rng.choice(list(self.obj_locals))
        h = self.obj_locals[recv]
        arg = self.ensure_numeric(m)
        ret = self.fresh("n")
        m.vcall(ret, recv, self.ctx.sig_name(h), arg)
        self.num_locals.append(ret)

    def _emit_field_traffic(self, m: MethodBuilder) -> None:
        """Store an object into a per-hierarchy shared field, or load one
        back.  The analyses are field-based, so these fields act as heap
        hubs that accumulate allocation sites — the collection pattern that
        saturates k-update sets on real code."""
        if not self.obj_locals:
            self._emit_allocation(m)
        var = self.rng.choice(list(self.obj_locals))
        h = self.obj_locals[var]
        # A program-wide "cache" field mixes hierarchies (the collection
        # pattern); per-hierarchy "sharedN" fields stay typed.
        fieldname = "cache" if self.rng.random() < 0.3 else f"shared{h}"
        if self.rng.random() < 0.6:
            m.store(var, fieldname, var)
        else:
            dst = self.fresh("o")
            m.load(dst, var, fieldname)
            self.obj_locals[dst] = h

    def _emit_util_call(self, m: MethodBuilder) -> None:
        cls, sig = self.ctx.random_util(self.rng)
        arg = self.ensure_numeric(m)
        ret = self.fresh("n")
        m.scall(ret, cls, sig, arg)
        self.num_locals.append(ret)

    def _emit_branch(self, m: MethodBuilder) -> None:
        cond = self.ensure_numeric(m)
        target = self.fresh("n")
        m.if_(cond)
        m.const(target, self.rng.choice(LITERAL_POOL))
        m.else_()
        m.const(target, self.rng.choice(LITERAL_POOL))
        m.end()
        self.num_locals.append(target)

    def _emit_loop(self, m: MethodBuilder) -> None:
        i = self.fresh("n")
        step = self.fresh("n")
        m.const(i, 0)
        m.const(step, 1)
        m.while_(i)
        m.binop(i, "+", i, step)
        m.end()
        self.num_locals.append(i)


class _Context:
    """Names and cross-references shared by all generated bodies."""

    def __init__(self, spec: CorpusSpec):
        self.spec = spec
        prefix = "".join(ch for ch in spec.name.title() if ch.isalnum())
        self.prefix = prefix or "Gen"

    def base_name(self, h: int) -> str:
        return f"{self.prefix}Base{h}"

    def impl_name(self, h: int, j: int) -> str:
        return f"{self.prefix}Impl{h}x{j}"

    def sig_name(self, h: int) -> str:
        return f"op{h}"

    def util_name(self, u: int) -> str:
        return f"{self.prefix}Util{u}"

    def util_sig(self, k: int) -> str:
        return f"helper{k}"

    def random_util(self, rng: random.Random) -> tuple[str, str]:
        u = rng.randrange(self.spec.util_classes)
        k = rng.randrange(self.spec.util_methods_per_class)
        return self.util_name(u), self.util_sig(k)


def generate(spec: CorpusSpec) -> JProgram:
    """Generate the deterministic subject program described by ``spec``."""
    rng = random.Random(spec.seed)
    ctx = _Context(spec)
    program = JProgram(entry="Main.main")

    # A common root so lattice joins across hierarchies stay defined
    # (java.lang.Object).
    program.add_class(make_class("Object"))

    # Library layer: static numeric helpers with internal call chains.
    for u in range(spec.util_classes):
        cls = make_class(ctx.util_name(u), superclass="Object")
        for k in range(spec.util_methods_per_class):
            m = MethodBuilder(ctx.util_sig(k), params=("p",), is_static=True)
            gen = _BodyGenerator(rng, spec, ctx)
            gen.num_locals.append("p")
            m.binop("acc", rng.choice(BINOPS), "p", "p")
            gen.num_locals.append("acc")
            for _ in range(max(2, spec.stmts_per_method // 2)):
                roll = rng.random()
                if roll < 0.5:
                    a = gen.ensure_numeric(m)
                    m.binop("acc", rng.choice(BINOPS), "acc", a)
                elif roll < 0.8 and k > 0:
                    # chain into a lower helper of the same class
                    m.scall("acc", ctx.util_name(u), ctx.util_sig(rng.randrange(k)), "acc")
                else:
                    gen.emit_statement(m)
            m.ret("acc")
            cls.add_method(m.build())
        program.add_class(cls)

    # Hierarchies: abstract base + overriding implementations.
    for h in range(spec.hierarchies):
        base = make_class(ctx.base_name(h), superclass="Object", is_abstract=True)
        program.add_class(base)
        for j in range(spec.impls_per_hierarchy):
            impl = make_class(ctx.impl_name(h, j), superclass=ctx.base_name(h))
            m = MethodBuilder(ctx.sig_name(h), params=("p",))
            gen = _BodyGenerator(rng, spec, ctx)
            gen.num_locals.append("p")
            for _ in range(spec.stmts_per_method):
                gen.emit_statement(m)
            m.ret(gen.ensure_numeric(m))
            impl.add_method(m.build())
            program.add_class(impl)

    # Drivers: a chain of static methods from main.
    main_cls = make_class("Main", superclass="Object")
    for d in range(spec.driver_methods):
        m = MethodBuilder(f"driver{d}", params=("p",), is_static=True)
        gen = _BodyGenerator(rng, spec, ctx)
        gen.num_locals.append("p")
        for _ in range(spec.stmts_per_method):
            gen.emit_statement(m)
        if d + 1 < spec.driver_methods:
            m.scall("chain", "Main", f"driver{d + 1}", gen.ensure_numeric(m))
        m.ret(gen.ensure_numeric(m))
        main_cls.add_method(m.build())

    main = MethodBuilder("main", is_static=True)
    gen = _BodyGenerator(rng, spec, ctx)
    seed_var = gen.fresh("n")
    main.const(seed_var, 1)
    gen.num_locals.append(seed_var)
    # main allocates at least one object per hierarchy so dispatch resolves.
    for h in range(spec.hierarchies):
        var = gen.fresh("o")
        main.new(var, ctx.impl_name(h, rng.randrange(spec.impls_per_hierarchy)))
        gen.obj_locals[var] = h
    for _ in range(spec.stmts_per_method):
        gen.emit_statement(main)
    if spec.driver_methods:
        main.scall("r", "Main", "driver0", gen.ensure_numeric(main))
    main_cls.add_method(main.build())
    program.add_class(main_cls)

    return finalize(program)
