"""The five benchmark subjects, named after the paper's code bases.

Relative sizes track the paper (minijavac 6.5k < antlr 22k < emma 26k <
pmd 61k < ant 105k LOC), scaled down for a pure-Python solver substrate
(see DESIGN.md, substitutions).  ``SCALE`` applies a global factor so the
whole evaluation can be grown or shrunk uniformly (benchmarks default to
1.0; quick tests use smaller factors).
"""

from __future__ import annotations

from dataclasses import replace

from ..javalite.ast import JProgram
from .generator import CorpusSpec, generate

PRESETS: dict[str, CorpusSpec] = {
    "minijavac": CorpusSpec(
        name="minijavac", seed=101,
        hierarchies=2, impls_per_hierarchy=3,
        util_classes=2, util_methods_per_class=3,
        driver_methods=4, stmts_per_method=8,
    ),
    "antlr": CorpusSpec(
        name="antlr", seed=202,
        hierarchies=4, impls_per_hierarchy=4,
        util_classes=3, util_methods_per_class=4,
        driver_methods=8, stmts_per_method=10,
    ),
    "emma": CorpusSpec(
        name="emma", seed=303,
        hierarchies=5, impls_per_hierarchy=4,
        util_classes=4, util_methods_per_class=4,
        driver_methods=9, stmts_per_method=10,
    ),
    "pmd": CorpusSpec(
        name="pmd", seed=404,
        hierarchies=7, impls_per_hierarchy=5,
        util_classes=5, util_methods_per_class=5,
        driver_methods=12, stmts_per_method=12,
    ),
    "ant": CorpusSpec(
        name="ant", seed=505,
        hierarchies=9, impls_per_hierarchy=6,
        util_classes=7, util_methods_per_class=5,
        driver_methods=16, stmts_per_method=13,
    ),
}

#: Benchmark subject order used throughout Section 7.
SUBJECT_ORDER = ["minijavac", "antlr", "emma", "pmd", "ant"]

_cache: dict[tuple[str, float, int | None], JProgram] = {}


def load_subject(name: str, scale: float = 1.0, seed: int | None = None) -> JProgram:
    """Generate (and memoize) a preset subject program.

    ``seed`` overrides the preset's baked-in generator seed, so callers that
    need several *distinct but reproducible* variants of one subject — the
    service tests drive many sessions against fixtures they must be able to
    regenerate bit-for-bit — can pin one explicitly.  ``seed=None`` keeps the
    preset default (and its memoized program).
    """
    key = (name, scale, seed)
    if key not in _cache:
        spec = PRESETS[name]
        if seed is not None:
            spec = replace(spec, seed=seed)
        if scale != 1.0:
            spec = spec.scaled(scale)
        _cache[key] = generate(spec)
    return _cache[key]
