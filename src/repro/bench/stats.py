"""Summary statistics for update-time distributions (Section 7 boxplots)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    frac = rank - lower
    return ordered[lower] * (1 - frac) + ordered[upper] * frac


@dataclass
class Distribution:
    """A boxplot-style summary of a measurement series."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    p99: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Distribution":
        if not values:
            raise ValueError("empty distribution")
        return cls(
            count=len(values),
            minimum=min(values),
            q1=percentile(values, 25),
            median=percentile(values, 50),
            q3=percentile(values, 75),
            p99=percentile(values, 99),
            maximum=max(values),
            mean=sum(values) / len(values),
        )

    def row(self, unit: float = 1e3) -> dict[str, float]:
        """As a dict scaled to a unit (default: seconds -> milliseconds)."""
        return {
            "n": self.count,
            "min": self.minimum * unit,
            "q1": self.q1 * unit,
            "median": self.median * unit,
            "q3": self.q3 * unit,
            "p99": self.p99 * unit,
            "max": self.maximum * unit,
            "mean": self.mean * unit,
        }


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of measurements below ``threshold`` (same unit)."""
    if not values:
        return 1.0
    return sum(1 for v in values if v < threshold) / len(values)
