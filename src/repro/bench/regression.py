"""Log-log regression of update time vs impact (Section 7.1).

The paper fits a linear regression on log-log plots of update time against
change impact and finds ``time ~ impact^1.5`` approximately.  We reproduce
the fit with plain least squares (no numpy needed at this size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .timing import UpdateMeasurement


@dataclass
class LogLogFit:
    """``time = scale * impact^exponent`` fitted on log-log axes."""

    exponent: float
    scale: float
    r_squared: float
    points: int


def fit_time_vs_impact(
    measurements: Sequence[UpdateMeasurement],
    min_impact: int = 1,
) -> LogLogFit:
    """Least-squares fit of log(time) against log(impact).

    Zero-impact changes are excluded (log undefined; they are the
    support-count-absorbed updates that cost near-constant time).
    """
    xs: list[float] = []
    ys: list[float] = []
    for m in measurements:
        if m.impact >= min_impact and m.seconds > 0:
            xs.append(math.log10(m.impact))
            ys.append(math.log10(m.seconds))
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two positive-impact points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx < 1e-12:  # all impacts (numerically) equal
        raise ValueError("all impacts equal; exponent undefined")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LogLogFit(
        exponent=slope, scale=10 ** intercept, r_squared=r_squared, points=n
    )
