"""Benchmark harness utilities: timing, distributions, memory, regression."""

from .memory import deep_sizeof, solver_memory, traced_alloc
from .regression import LogLogFit, fit_time_vs_impact
from .stats import Distribution, fraction_below, percentile
from .tables import DISTRIBUTION_HEADERS, distribution_row, format_table
from .timing import (
    BenchmarkRun,
    UpdateMeasurement,
    run_update_benchmark,
    time_initialization,
)

__all__ = [
    "BenchmarkRun",
    "DISTRIBUTION_HEADERS",
    "Distribution",
    "LogLogFit",
    "UpdateMeasurement",
    "deep_sizeof",
    "distribution_row",
    "fit_time_vs_impact",
    "format_table",
    "fraction_below",
    "percentile",
    "run_update_benchmark",
    "solver_memory",
    "time_initialization",
    "traced_alloc",
]
