"""ASCII tables for benchmark output (the harness prints the same rows and
series the paper's tables/figures report)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def distribution_row(name: str, dist_row: Mapping[str, float]) -> list[object]:
    """A table row from :meth:`repro.bench.stats.Distribution.row`."""
    return [
        name,
        dist_row["n"],
        dist_row["min"],
        dist_row["q1"],
        dist_row["median"],
        dist_row["q3"],
        dist_row["p99"],
        dist_row["max"],
    ]


DISTRIBUTION_HEADERS = ["series", "n", "min", "q1", "median", "q3", "p99", "max"]
