"""Timing harness for initialization and per-change update measurements.

Mirrors the paper's protocol: "We ran each benchmark 4 times, dropped the
result of the first run to account for JVM warmup, and report the average
times of the remaining three runs."  Python has no JIT warm-up of that kind,
but the first run still pays allocator/caching costs, so we keep the
drop-first-average-rest protocol (configurable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence, Type

from ..analyses.base import AnalysisInstance
from ..changes.base import Change
from ..engines.base import Solver
from ..metrics import SolverMetrics
from ..robustness import GuardedSolver


@dataclass
class UpdateMeasurement:
    """One change's measured update, with its observed impact."""

    label: str
    seconds: float
    impact: int
    work: int


@dataclass
class BenchmarkRun:
    """All measurements of one (analysis, engine, subject) combination."""

    analysis: str
    engine: str
    init_seconds: float
    updates: list[UpdateMeasurement] = field(default_factory=list)

    def update_times(self) -> list[float]:
        return [u.seconds for u in self.updates]


def time_initialization(
    instance: AnalysisInstance,
    engine_cls: Type[Solver],
    repeats: int = 4,
    drop_first: bool = True,
    metrics: SolverMetrics | None = None,
    setup: Callable[[Solver], None] | None = None,
    guard: bool = False,
) -> tuple[float, Solver]:
    """Initialization time under the paper's warm-up protocol; returns the
    mean and the last solved solver (reused for update runs).

    A ``metrics`` collector, when given, is attached to every repeat (its
    counters accumulate across them; enabled collection perturbs the
    timings, so profile runs and headline-number runs should be separate).
    ``setup``, when given, runs on each fresh solver before the clock starts
    (budgets, self-check mode, ...); ``guard=True`` wraps each repeat in a
    :class:`~repro.robustness.GuardedSolver`, so the measured time includes
    the transactional-update discipline.
    """
    times = []
    solver = None
    for _ in range(max(1, repeats)):
        solver = instance.make_solver(engine_cls, solve=False, metrics=metrics)
        if setup is not None:
            setup(solver)
        if guard:
            solver = GuardedSolver(solver)
        start = time.perf_counter()
        solver.solve()
        times.append(time.perf_counter() - start)
    if drop_first and len(times) > 1:
        times = times[1:]
    return sum(times) / len(times), solver


def run_update_benchmark(
    instance: AnalysisInstance,
    engine_cls: Type[Solver],
    changes: Sequence[Change],
    repeats: int = 1,
    metrics: SolverMetrics | None = None,
    setup: Callable[[Solver], None] | None = None,
    guard: bool = False,
) -> BenchmarkRun:
    """Initialize once, then measure every change's incremental update.

    Change sequences from :mod:`repro.changes` are state-restoring, so
    ``repeats > 1`` re-runs the same sequence on the same solver; the first
    pass is dropped when ``repeats > 1`` (warm-up protocol).  ``setup`` and
    ``guard`` are forwarded to :func:`time_initialization`, so with
    ``guard=True`` every measured update runs transactionally.
    """
    init_seconds, solver = time_initialization(
        instance, engine_cls, repeats=1, drop_first=False, metrics=metrics,
        setup=setup, guard=guard,
    )
    run = BenchmarkRun(
        analysis=instance.name, engine=engine_cls.__name__, init_seconds=init_seconds
    )
    passes: list[list[UpdateMeasurement]] = []
    for _ in range(max(1, repeats)):
        measurements = []
        for change in changes:
            start = time.perf_counter()
            stats = solver.update(
                insertions=change.insertions, deletions=change.deletions
            )
            elapsed = time.perf_counter() - start
            measurements.append(
                UpdateMeasurement(
                    label=change.label,
                    seconds=elapsed,
                    impact=stats.impact,
                    work=stats.work,
                )
            )
        passes.append(measurements)
    if len(passes) > 1:
        passes = passes[1:]
    # Average each change's time across the kept passes.
    kept = passes[0]
    for later in passes[1:]:
        for base, extra in zip(kept, later):
            base.seconds += extra.seconds
    for base in kept:
        base.seconds /= len(passes)
    run.updates = kept
    return run
