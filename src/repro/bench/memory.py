"""Memory measurement for RQ2 (Section 7.2).

The paper measures reachable JVM heap before/after initializing the
analysis.  We provide two equivalents:

* :func:`deep_sizeof` — recursive ``sys.getsizeof`` over a solver's state
  (the Python analogue of "reachable heap"),
* :func:`traced_alloc` — ``tracemalloc`` delta across a callable.

Plus the engine-reported :meth:`state_size` (abstract cells), which is
allocator-independent and the most stable basis for engine comparisons.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Callable


def deep_sizeof(obj: object, _seen: set[int] | None = None) -> int:
    """Recursive ``sys.getsizeof`` with cycle protection.

    Descends into containers and object ``__dict__``/``__slots__``; shared
    objects are counted once (reachable-set semantics, like a heap dump).
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)
    size = sys.getsizeof(obj, 0)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_sizeof(key, _seen)
            size += deep_sizeof(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, _seen)
    elif hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), _seen)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                size += deep_sizeof(getattr(obj, slot), _seen)
    return size


def traced_alloc(fn: Callable[[], object]) -> tuple[object, int]:
    """Run ``fn`` and return (result, net allocated bytes)."""
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    result = fn()
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, max(0, after - before)


def solver_memory(solver) -> dict[str, float]:
    """Both memory views of a solved solver."""
    return {
        "state_cells": solver.state_size(),
        "deep_bytes": deep_sizeof(solver),
    }
