"""Deterministic fault injection at named engine sites.

Recovery code that never runs is decoration.  Every guarded path in this
package (rollback, fallback re-solve, checkpoint validation, kernel-cache
exception safety) is exercised by tests that *make* the failure happen, at
a precise, named point in the engine's hot path, on a deterministic hit
count — no randomness, no monkeypatching engine internals.

Sites are compiled into the engines as near-zero-cost probes::

    if _faults.ACTIVE is not None:
        _faults.fire("kernel.emit")

and tests arm them with the :func:`inject` context manager::

    with faults.inject("timeline.append", at=3):
        with pytest.raises(RollbackError):
            guarded.update(insertions=...)

``at=3`` means the third time the site is reached the injected exception is
raised; earlier and later hits pass through.  The default exception,
:class:`FaultInjected`, deliberately does **not** subclass ``SolverError``
— the guard must recover from arbitrary failures, not just the ones the
engine anticipated.
"""

from __future__ import annotations

from contextlib import contextmanager

#: Registry of every named injection site compiled into the engines.
#: docs/ROBUSTNESS.md documents where each one lives; tests iterate this
#: set so a new site cannot be added without chaos coverage.
FAULT_SITES = frozenset(
    {
        "kernel.emit",  # rule-kernel batch evaluation, every engine
        "aggregate.combine",  # aggregation feed/advance, every engine
        "timeline.append",  # Laddder compensation delta application
        "checkpoint.write",  # save_checkpoint payload serialization
        "compile.build",  # KernelCache plan+compile of a rule body
        "cluster.dispatch",  # front-end request routing to a worker
        "worker.heartbeat",  # worker-side ping handling (liveness probe)
    }
)


class FaultInjected(RuntimeError):
    """The default exception raised by an armed fault site.

    Intentionally outside the ``DatalogError`` hierarchy: recovery paths
    must handle failures the engine never anticipated."""


class FaultPlan:
    """An armed set of fault sites with deterministic hit-count triggers.

    ``hits`` counts every probe of each site (fired or not) so tests can
    assert a site was actually reached; ``fired`` counts raises."""

    __slots__ = ("site", "at", "times", "exc", "hits", "fired")

    def __init__(self, site: str, at: int = 1, times: int = 1, exc=FaultInjected):
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; registered sites: "
                f"{sorted(FAULT_SITES)}"
            )
        if at < 1:
            raise ValueError("fault trigger 'at' is 1-based and must be >= 1")
        self.site = site
        self.at = at
        self.times = times
        self.exc = exc
        self.hits = 0
        self.fired = 0

    def fire(self, site: str) -> None:
        if site != self.site:
            return
        self.hits += 1
        if self.hits >= self.at and self.fired < self.times:
            self.fired += 1
            raise self.exc(f"injected fault at {site} (hit {self.hits})")


#: The currently armed plan, or None.  Engines guard their probes with
#: ``if _faults.ACTIVE is not None`` so the disarmed cost is one global
#: load per probe site.
ACTIVE: FaultPlan | None = None


def fire(site: str) -> None:
    """Probe ``site``: raise if an armed plan says this hit should fail."""
    if ACTIVE is not None:
        ACTIVE.fire(site)


#: Environment variable arming a fault plan in a freshly started process
#: (cluster worker subprocesses cannot be reached by in-process ``inject``).
FAULT_ENV = "REPRO_FAULT"


def arm_from_env(environ=None) -> FaultPlan | None:
    """Arm a plan from ``REPRO_FAULT=site[:at[:times]]``, if set.

    The cluster recovery tests and the CI fault-injected smoke use this to
    plant deterministic failures inside worker *subprocesses*; an in-process
    plan must not already be armed.  Returns the armed plan (or None when
    the variable is unset/empty)."""
    global ACTIVE
    if environ is None:
        import os

        environ = os.environ
    spec = environ.get(FAULT_ENV, "").strip()
    if not spec:
        return None
    parts = spec.split(":")
    site = parts[0]
    at = int(parts[1]) if len(parts) > 1 else 1
    times = int(parts[2]) if len(parts) > 2 else 1
    if ACTIVE is not None:
        raise RuntimeError("a fault plan is already active; plans do not nest")
    ACTIVE = FaultPlan(site, at=at, times=times)
    return ACTIVE


@contextmanager
def inject(site: str, at: int = 1, times: int = 1, exc=FaultInjected):
    """Arm ``site`` to raise on its ``at``-th hit, for ``times`` raises.

    Yields the :class:`FaultPlan` so callers can assert ``plan.fired`` (the
    fault actually triggered) or ``plan.hits`` (the site was reached).
    Plans do not nest; arming while armed is a test bug and raises."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a fault plan is already active; plans do not nest")
    plan = FaultPlan(site, at=at, times=times, exc=exc)
    ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = None
