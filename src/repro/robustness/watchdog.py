"""Fixpoint watchdogs: iteration, wall-clock, and ascending-chain budgets.

Every engine already has a hard iteration ceiling (``MAX_ITERATIONS``,
``MAX_ROUNDS``, ``MAX_TIMESTAMP``) that catches *globally* diverging
fixpoints.  A :class:`Budget` tightens and extends that:

* ``max_iterations`` — overrides the engine ceiling per solve
  (``REPRO_MAX_ITERS``), so a CI job can bound a known-small analysis far
  below the engine default;
* ``deadline`` — a wall-clock budget in seconds (``--deadline``), polled
  once per outer iteration/round so the cost is one ``monotonic()`` call
  per fixpoint step;
* ``max_chain`` — a strictly-ascending-chain counter (``REPRO_MAX_CHAIN``)
  for non-Noetherian lattices: each time a single aggregation group's
  total strictly changes, its chain length ticks; exceeding the budget
  means the lattice is climbing an infinite ascending chain (e.g. interval
  analysis without widening) and the solve would never settle.  This
  catches divergence *localized to one group* long before the global
  iteration ceiling would — and in DRedL's insertion sweep, which has no
  per-group guard at all, it is the only thing standing between a
  non-Noetherian lattice and an unbounded worklist loop.

All three trip a typed :class:`BudgetExceededError` instead of hanging,
and bump the ``watchdog_trips`` metrics counter.
"""

from __future__ import annotations

import os
import time

from ..datalog.errors import BudgetExceededError

#: Default ascending-chain budget: generous enough that no legitimate
#: widened/finite-height analysis in the repo comes near it, small enough
#: to trip within seconds on a genuinely infinite chain.
DEFAULT_MAX_CHAIN = 100_000


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise BudgetExceededError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise BudgetExceededError(f"{name} must be positive, got {value}")
    return value


class Budget:
    """Per-solve resource budgets; shared by all four engines.

    A solver owns one Budget (``solver.budget``); ``begin()`` is called at
    the top of every ``solve``/``update`` and resets the clock and the
    chain counters.  The polling helpers are written so the fully-disabled
    case costs one attribute load and one ``is None`` test."""

    __slots__ = ("max_iterations", "deadline", "max_chain", "_t0", "_chains")

    def __init__(
        self,
        max_iterations: int | None = None,
        deadline: float | None = None,
        max_chain: int | None = None,
    ):
        self.max_iterations = max_iterations
        self.deadline = deadline
        self.max_chain = DEFAULT_MAX_CHAIN if max_chain is None else max_chain
        self._t0 = 0.0
        self._chains: dict[tuple, int] = {}

    @classmethod
    def from_env(cls) -> "Budget":
        """Budget configured from ``REPRO_MAX_ITERS`` / ``REPRO_MAX_CHAIN``."""
        return cls(
            max_iterations=_env_int("REPRO_MAX_ITERS"),
            max_chain=_env_int("REPRO_MAX_CHAIN"),
        )

    def begin(self) -> None:
        """Reset the wall clock and ascending-chain counters for a solve."""
        self._chains.clear()
        if self.deadline is not None:
            self._t0 = time.monotonic()

    def iterations(self, engine_default: int) -> int:
        """The iteration ceiling for this solve: the tighter of the
        engine's own ceiling and the configured budget."""
        if self.max_iterations is None:
            return engine_default
        return min(self.max_iterations, engine_default)

    def poll(self, context: str) -> None:
        """Raise if the wall-clock deadline has passed.  Call once per
        outer fixpoint iteration — not in inner loops."""
        if self.deadline is None:
            return
        elapsed = time.monotonic() - self._t0
        if elapsed > self.deadline:
            raise BudgetExceededError(
                f"deadline of {self.deadline:g}s exceeded after {elapsed:.3f}s "
                f"({context})"
            )

    def chain_advance(self, pred: str, key: tuple) -> None:
        """Record that aggregation group ``(pred, key)`` strictly changed
        its total; raise once a single group's chain outruns the budget —
        the signature of a non-Noetherian (infinite ascending chain)
        lattice under a non-widening analysis."""
        chains = self._chains
        k = (pred, key)
        n = chains.get(k, 0) + 1
        chains[k] = n
        if n > self.max_chain:
            raise BudgetExceededError(
                f"aggregation group {pred}{key!r} climbed a strictly-ascending "
                f"chain of length {n} (> {self.max_chain}); the lattice appears "
                "non-Noetherian — add widening or raise REPRO_MAX_CHAIN"
            )
