"""Runtime invariant validation for the four engines (``--self-check``).

Each engine's incrementality rests on structural invariants the paper
states but normal evaluation never re-verifies: Laddder's settled
timelines are all-non-negative and its rolled-up group totals equal the
fold of their aggregand trees; DRedL's stored group totals equal the fold
of the surviving aggregands; the re-solving engines' exported views are
exactly the pruned fixpoint and the fixpoint is actually closed under the
rules.  A bug (or bit flip, or misbehaving user aggregator) that corrupts
one of these silently poisons every downstream stratum.

Self-check mode validates them between strata and after guarded updates,
raising :class:`InvariantViolationError` with a diagnostic ``dump`` — the
engine, component, predicate, and violated invariant — so the failure is
a reproducible bug report instead of a wrong analysis result.

Cost: checks re-fold aggregation groups and re-enumerate rule kernels, so
expect self-checked runs to be several times slower; the time is metered
into the ``selfcheck_seconds`` counter.
"""

from __future__ import annotations

from ..datalog.errors import InvariantViolationError


def _violation(solver, index: int, invariant: str, **detail) -> None:
    dump = {
        "engine": type(solver).__name__,
        "component": index,
        "invariant": invariant,
    }
    dump.update(detail)
    raise InvariantViolationError(
        f"self-check failed in {dump['engine']} component {index}: "
        f"{invariant}" + (f" ({detail})" if detail else ""),
        dump=dump,
    )


def check_solver(solver) -> None:
    """Validate every component plus the EDB view of the exported store."""
    for pred, rows in solver._facts.items():
        if not rows and pred not in solver.arities:
            continue
        stored = set(solver._exported.get(pred).tuples)
        if stored != rows:
            _violation(
                solver, -1, "exported EDB relation out of sync with staged facts",
                pred=pred, missing=sorted(rows - stored, key=repr)[:5],
                extra=sorted(stored - rows, key=repr)[:5],
            )
    for index in range(len(solver.components)):
        check_component(solver, index)


def check_component(solver, index: int) -> None:
    """Dispatch to the engine-specific invariant suite for one component."""
    from ..engines.dred import DRedLSolver
    from ..engines.laddder.solver import LaddderSolver
    from ..engines.naive import NaiveSolver
    from ..engines.seminaive import SemiNaiveSolver

    if isinstance(solver, LaddderSolver):
        _check_laddder(solver, index)
    elif isinstance(solver, DRedLSolver):
        _check_dred(solver, index)
    elif isinstance(solver, (NaiveSolver, SemiNaiveSolver)):
        _check_resolving(solver, index)
    # Unknown engine classes simply have no registered invariants.


# -- Laddder ---------------------------------------------------------------


def _check_laddder(solver, index: int) -> None:
    state = solver._states[index]
    component_preds = state.component.predicates
    exports = solver.program.exported_predicates()

    for pred, relation in state.relations.items():
        for row, timeline in relation.timelines.items():
            if not timeline:
                _violation(
                    solver, index,
                    "empty timeline left behind (cleanup invariant)",
                    pred=pred, row=row,
                )
            if not timeline.is_settled():
                _violation(
                    solver, index,
                    "settled timeline has a negative delta "
                    "(inflationary monotonicity)",
                    pred=pred, row=row,
                    entries=list(timeline.entries()),
                )
            running = 0
            for t, d in timeline.entries():
                running += d
                if running < 0:
                    _violation(
                        solver, index,
                        "cumulative support count went negative",
                        pred=pred, row=row, timestamp=t,
                    )

    for pred, per_pred in state.groups.items():
        for key, group in per_pred.items():
            if not group:
                _violation(
                    solver, index, "empty aggregation group retained",
                    pred=pred, key=key,
                )
            problem = group.check_consistency()
            if problem:
                _violation(
                    solver, index,
                    "group rolled-up totals inconsistent with aggregand trees",
                    pred=pred, key=key, detail=problem,
                )

    # Exported view (epoch consistency): the timeless exported store must
    # equal presence for plain predicates and pruned group finals for
    # aggregated ones.
    for pred in component_preds:
        if pred not in exports:
            continue
        stored = set(solver._exported.get(pred).tuples)
        if pred in state.specs:
            spec = state.specs[pred]
            expected = {
                spec.tuple_for(key, group.final())
                for key, group in state.groups[pred].items()
                if group
            }
        else:
            expected = state.rel(pred).present_tuples()
        if stored != expected:
            _violation(
                solver, index, "exported view out of sync with timelines",
                pred=pred,
                missing=sorted(expected - stored, key=repr)[:5],
                extra=sorted(stored - expected, key=repr)[:5],
            )


# -- DRedL -----------------------------------------------------------------


def _check_dred(solver, index: int) -> None:
    state = solver._states[index]
    solver._bind_kernels(state)  # recompute kernels may not be bound yet
    exports = solver.program.exported_predicates()

    for pred, totals in state.totals.items():
        spec = state.specs[pred]
        relation = state.rel(pred)
        for key, stored_total in totals.items():
            exact = solver._recompute_total(state, spec, key)
            if exact != stored_total:
                _violation(
                    solver, index,
                    "stored group total inconsistent with surviving aggregands",
                    pred=pred, key=key, stored=stored_total, recomputed=exact,
                )
            if spec.tuple_for(key, stored_total) not in relation:
                _violation(
                    solver, index,
                    "final group total has no backing aggregate tuple",
                    pred=pred, key=key, total=stored_total,
                )

    for pred in state.component.predicates:
        if pred not in exports:
            continue
        stored = set(solver._exported.get(pred).tuples)
        if solver.inflationary and pred in state.specs:
            spec = state.specs[pred]
            expected = {
                spec.tuple_for(key, total)
                for key, total in state.totals[pred].items()
            }
        else:
            expected = set(state.rel(pred).tuples)
        if stored != expected:
            _violation(
                solver, index, "exported view out of sync with DRed state",
                pred=pred,
                missing=sorted(expected - stored, key=repr)[:5],
                extra=sorted(stored - expected, key=repr)[:5],
            )


# -- naive / semi-naive ----------------------------------------------------


def _check_resolving(solver, index: int) -> None:
    """The re-solving engines: exported == prune(raw), and the raw fixpoint
    is actually closed under the component's (non-aggregation) rules —
    the stratum-completion invariant."""
    from ..engines.aggspec import compile_agg_specs, prune_aggregated

    component = solver.components[index]
    specs = compile_agg_specs(component.rules, solver.program)
    exports = solver.program.exported_predicates()

    for pred in component.predicates:
        raw = set(solver._raw.get(pred).tuples)
        if pred in exports:
            stored = set(solver._exported.get(pred).tuples)
            if pred in specs:
                expected = prune_aggregated(raw, specs[pred])
            else:
                expected = raw
            if stored != expected:
                _violation(
                    solver, index, "exported view is not the pruned fixpoint",
                    pred=pred,
                    missing=sorted(expected - stored, key=repr)[:5],
                    extra=sorted(stored - expected, key=repr)[:5],
                )

    def lookup(pred: str):
        if pred in component.predicates:
            return solver._raw.get(pred)
        return solver._exported.get(pred)

    for rule in component.rules:
        if rule.is_aggregation:
            continue
        kernel = solver.kernels.kernel(rule).fn
        target = solver._raw.get(rule.head.pred)
        for head_row in kernel(lookup):
            if head_row not in target:
                _violation(
                    solver, index,
                    "fixpoint not closed under rule (stratum completion)",
                    rule=repr(rule), head=head_row,
                )
