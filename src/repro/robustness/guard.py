"""Transactional update application with rollback and graceful degradation.

The engines mutate deep structure in place during an epoch — exported
stores, per-component relations and timelines, aggregation group state,
staged fact sets.  An exception mid-update (a bad aggregator, a watchdog
trip, a kernel bug) would otherwise strand that state half-mutated, with
the exported view disagreeing with the internal support structure.

:class:`UpdateGuard` makes one update transactional with an **undo log**:
every mutable container touched during the update appends the *inverse* of
each mutation as a ``(bound_method, *args)`` entry into one shared journal.
On success, :meth:`UpdateGuard.commit` throws the journal away; on failure,
:meth:`UpdateGuard.rollback` replays it in reverse, restoring the solver to
a bit-equal pre-update state.  Cost is O(tuples touched), not O(state) —
the same asymptotics the paper's incrementality argument rests on, so
guarding does not forfeit the speedup being measured.

:class:`GuardedSolver` wraps any engine with that discipline, plus
**graceful degradation**: after a rollback it can rebuild the answer from
scratch with the reference semi-naive engine on the post-change facts and
swap the result in, so one poisoned epoch degrades to a from-scratch solve
instead of an outage.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..datalog.errors import BudgetExceededError, RollbackError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..engines.base import FactChanges, Solver, UpdateStats


class UpdateGuard:
    """One transaction over a solver's mutable state.

    ``install()`` threads a shared undo list through every journaling
    container the solver owns (exported store, component relations,
    timelines, aggregation groups, staged facts) and snapshots the few
    structures that are mutated by plain assignment instead (DRed group
    totals, semi-naive running totals, the arity map).  Exactly one of
    ``commit()`` / ``rollback()`` must follow.
    """

    def __init__(self, solver: "Solver"):
        self.solver = solver
        self.undo: list[tuple] = []
        #: every object whose ``journal`` attribute we set; detached on exit.
        self._journaled: list = []
        #: attribute-reference restores: (obj, attr, value-before).
        self._attr_restores: list[tuple] = []
        #: dicts restored by clear+update (identity is shared, e.g. arities).
        self._dict_restores: list[tuple] = []

    # -- installation ------------------------------------------------------

    def _attach(self, obj) -> None:
        obj.journal = self.undo
        self._journaled.append(obj)

    def _journal_store(self, store) -> None:
        self._attach(store)
        for relation in store.relations.values():
            self._attach(relation)

    def install(self) -> "UpdateGuard":
        solver = self.solver
        undo = self.undo
        solver._undo = undo

        # Structures mutated by plain assignment: snapshot-and-restore.
        # arities is shared by identity with every relation store, so it is
        # restored in place; the dict itself only ever *gains* entries (a
        # new fact predicate fixes its arity in _check_row).
        self._dict_restores.append((solver.arities, dict(solver.arities)))
        for attr in ("_exported", "_raw", "last_stats"):
            if hasattr(solver, attr):
                self._attr_restores.append((solver, attr, getattr(solver, attr)))
        # Semi-naive running totals: a full solve() rebinds the dict (the
        # attribute restore would suffice), but the impact-guided partial
        # path pops entries from the live one — snapshot by value.
        totals = getattr(solver, "_totals", None)
        if totals is not None:
            self._attr_restores.append(
                (solver, "_totals", {pred: dict(g) for pred, g in totals.items()})
            )

        # The exported store is mutated in place by the incremental engines
        # (and merely replaced — old object untouched — by the re-solving
        # ones, for which the attribute restore above suffices).  The
        # re-solving engines' raw store is likewise rebound by a full
        # solve() but cleared per-predicate in place by the impact-guided
        # partial path, so it journals too.
        self._journal_store(solver._exported)
        raw = getattr(solver, "_raw", None)
        if raw is not None:
            self._journal_store(raw)

        # Provenance annotations (docs/PROVENANCE.md) roll back alongside
        # the tuples they describe.
        provenance = getattr(solver, "provenance", None)
        if provenance is not None:
            self._attach(provenance)

        # Per-component deep state of the incremental engines.
        for comp in getattr(solver, "_states", ()):
            self._attach(comp)
            for relation in comp.relations.values():
                self._attach(relation)
            groups = getattr(comp, "groups", None)
            if groups is not None:  # Laddder aggregation state
                for per_pred in groups.values():
                    for group in per_pred.values():
                        self._attach(group)
            totals = getattr(comp, "totals", None)
            if totals is not None:  # DRed group totals: assigned, not journaled
                self._attr_restores.append(
                    (comp, "totals", {pred: dict(g) for pred, g in totals.items()})
                )
        return self

    # -- resolution --------------------------------------------------------

    def _detach(self) -> None:
        for obj in self._journaled:
            obj.journal = None
        self._journaled.clear()
        self.solver._undo = None

    def commit(self) -> None:
        """The update succeeded: discard the journal and detach."""
        self._detach()
        self.undo.clear()

    def rollback(self) -> None:
        """Replay the journal in reverse, restoring bit-equal pre-update
        state.  Journals are detached *first* so the inverse operations do
        not journal themselves."""
        self._detach()
        for entry in reversed(self.undo):
            entry[0](*entry[1:])
        self.undo.clear()
        for obj, attr, value in self._attr_restores:
            setattr(obj, attr, value)
        self._attr_restores.clear()
        for live, snapshot in self._dict_restores:
            live.clear()
            live.update(snapshot)
        self._dict_restores.clear()


class GuardedSolver:
    """Drop-in wrapper making ``update``/``solve`` failure-safe.

    * ``update`` runs under an :class:`UpdateGuard`.  On any exception the
      solver is rolled back to bit-equal pre-update state; then either the
      (typed) error propagates — wrapped as :class:`RollbackError` with the
      cause chained — or, with ``fallback=True``, the answer is recomputed
      from scratch by the reference semi-naive engine on the post-change
      facts and swapped in as the new inner solver.
    * Watchdog trips (:class:`BudgetExceededError`) always roll back and
      re-raise: the caller set a resource budget, and a from-scratch
      fallback would burn strictly more of it.
    * With ``self_check`` enabled, the whole-state invariant validation
      runs *before* commit, so a corrupted-but-quiet update rolls back too.

    Everything else (``relation``, ``add_facts``, ``metrics``, ...)
    delegates to the wrapped solver — tests that compare a guarded and an
    unguarded engine can treat the two interchangeably.
    """

    def __init__(self, solver: "Solver", fallback: bool = True,
                 self_check: bool | None = None):
        self.solver = solver
        self.fallback = fallback
        if self_check is not None:
            solver.self_check = self_check

    def __getattr__(self, name: str):
        return getattr(self.solver, name)

    # -- guarded lifecycle -------------------------------------------------

    def solve(self) -> None:
        try:
            self.solver.solve()
        except BudgetExceededError:
            raise
        except Exception:
            if not self.fallback:
                raise
            # From-scratch solve has no pre-state worth restoring; degrade
            # by replacing the engine outright.
            self._adopt_reference()

    def update(
        self,
        insertions: "FactChanges | None" = None,
        deletions: "FactChanges | None" = None,
    ) -> "UpdateStats":
        solver = self.solver
        guard = UpdateGuard(solver).install()
        try:
            stats = solver.update(insertions=insertions, deletions=deletions)
            if solver.self_check:
                self._final_self_check()
        except BudgetExceededError:
            guard.rollback()
            solver.metrics.rollbacks += 1
            raise
        except Exception as exc:
            guard.rollback()
            solver.metrics.rollbacks += 1
            if not self.fallback:
                raise RollbackError(
                    f"update failed ({type(exc).__name__}: {exc}) and was "
                    f"rolled back to the pre-update state"
                ) from exc
            before = {
                pred: solver.relation(pred)
                for pred in solver.program.exported_predicates()
            }
            reference = self._adopt_reference(insertions, deletions)
            after = {
                pred: reference.relation(pred)
                for pred in reference.program.exported_predicates()
            }
            return solver._exported_diff(before, after)
        else:
            guard.commit()
            return stats

    # -- internals ---------------------------------------------------------

    def _final_self_check(self) -> None:
        """Whole-solver invariant validation before commit: catches
        corruption that per-component checks inside the engine cannot see
        (components the epoch skipped, exported-store drift)."""
        from .selfcheck import check_solver

        solver = self.solver
        t0 = time.perf_counter()
        try:
            check_solver(solver)
        finally:
            solver.metrics.selfcheck_seconds += time.perf_counter() - t0

    def _adopt_reference(self, insertions=None, deletions=None):
        """Degrade gracefully: re-solve from scratch with the reference
        semi-naive engine on the post-change facts and make it the inner
        solver."""
        from ..engines.seminaive import SemiNaiveSolver

        solver = self.solver
        reference = SemiNaiveSolver(
            solver.source_program,
            metrics=solver.metrics,
            provenance=solver.provenance is not None,
        )
        reference.budget = solver.budget
        reference.self_check = solver.self_check
        # Staged rows live in the donor's intern-handle space (columnar
        # backend); externalize through the public view so the reference
        # solver interns them itself, in its own first-touch order.
        for pred, rows in solver._facts.items():
            if rows:
                reference.add_facts(pred, solver.facts(pred))
        # Stage the epoch's change on top of the (rolled-back, pre-update)
        # facts, then solve once.
        reference._normalize_changes(insertions, deletions)
        reference.solve()
        solver.metrics.fallback_resolves += 1
        self.solver = reference
        return reference
