"""Guarded solving: the safety rails around the four engines.

The paper's correctness claim — an incremental update produces *exactly*
the state a from-scratch solve would — is only worth anything if a failed
update cannot leave the solver half-mutated.  This package supplies:

* :mod:`repro.robustness.faults` — a deterministic fault-injection harness
  with named sites in every engine's hot path, so tests can *prove* the
  recovery paths below actually fire;
* :mod:`repro.robustness.guard` — transactional update application:
  :class:`GuardedSolver` runs ``update`` against an undo log of touched
  relations/timelines/groups and on any exception rolls the solver back to
  a bit-equal pre-update state, then optionally degrades gracefully by
  re-solving from scratch with the reference semi-naive engine;
* :mod:`repro.robustness.watchdog` — per-solve iteration and wall-clock
  budgets plus strictly-ascending-chain divergence detection, raising a
  typed :class:`BudgetExceededError` instead of hanging;
* :mod:`repro.robustness.selfcheck` — runtime invariant validation between
  strata (``--self-check`` / ``REPRO_SELF_CHECK=1``), raising
  :class:`InvariantViolationError` with a diagnostic dump.

See docs/ROBUSTNESS.md for the guard/rollback model, the fault-site
registry, and the failure-mode table.
"""

from ..datalog.errors import (
    BudgetExceededError,
    CheckpointError,
    InvariantViolationError,
    RollbackError,
    SolverError,
)
from .faults import FAULT_SITES, FaultInjected, FaultPlan, inject
from .guard import GuardedSolver, UpdateGuard
from .selfcheck import check_component, check_solver
from .watchdog import Budget

__all__ = [
    "Budget",
    "BudgetExceededError",
    "CheckpointError",
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "GuardedSolver",
    "InvariantViolationError",
    "RollbackError",
    "SolverError",
    "UpdateGuard",
    "check_component",
    "check_solver",
    "inject",
]
