"""Synthesized program changes (Section 7, "Program changes")."""

from .base import Change, rng_for
from .literals import literal_to_zero_changes
from .pointsto import alloc_site_changes
from .source_edits import (
    IncrementalSourceEditor,
    SourceEditor,
    diff_facts,
    pointsto_facts,
    value_facts,
)
from .stream import EditStream, StreamStep, editor_for

__all__ = [
    "Change",
    "EditStream",
    "IncrementalSourceEditor",
    "SourceEditor",
    "StreamStep",
    "alloc_site_changes",
    "diff_facts",
    "editor_for",
    "literal_to_zero_changes",
    "pointsto_facts",
    "rng_for",
    "value_facts",
]
