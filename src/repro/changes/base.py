"""Program-change synthesis (Section 7, "Program changes").

There is no standard benchmark for incremental program changes, so — like
the paper — we synthesize fact-level changes that are likely to affect the
analysis results.  A :class:`Change` is one epoch's insertions/deletions
plus a label; generators produce deterministic sequences from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

Facts = dict[str, set[tuple]]


@dataclass(frozen=True)
class Change:
    """One epoch of input-fact changes."""

    label: str
    insertions: dict[str, frozenset] = field(default_factory=dict)
    deletions: dict[str, frozenset] = field(default_factory=dict)

    def inverse(self) -> "Change":
        """The change that undoes this one."""
        return Change(
            label=f"undo({self.label})",
            insertions=self.deletions,
            deletions=self.insertions,
        )

    def apply_to(self, facts: Facts) -> None:
        """Mutate a fact dict the way a solver update would."""
        for pred, rows in self.deletions.items():
            facts.setdefault(pred, set()).difference_update(rows)
        for pred, rows in self.insertions.items():
            facts.setdefault(pred, set()).update(rows)


def rng_for(seed: int) -> random.Random:
    return random.Random(seed)
