"""Long-haul soak replay: edit streams with digest-checked checkpoints.

:func:`soak` drives one engine through a seeded
:class:`~repro.changes.stream.EditStream` — optionally mirroring every
edit into a live :class:`~repro.service.session.Session` — and, every
``checkpoint_every`` steps, re-solves the current fact state from scratch
with the reference semi-naive engine and compares snapshot digests
bit-for-bit.  Alongside correctness it records the drift gauges that
surface state-accretion bugs:

* ``timeline_entries`` / ``max_timeline_len`` (Laddder): total
  differential-count entries and the longest single timeline.
  ``timeline_entries - timeline_tuples`` (the *excess* over one entry
  per tuple) tracks the live multi-support structure: exact move-pair
  cancellation (plus compaction of non-recursive predicates) keeps it
  oscillating around the program's structural level instead of growing
  with edit count.  The harness gates on that *flatness* — a
  least-squares slope fitted to the excess-vs-step series must not
  project more growth over the whole stream than one baseline's worth
  of excess.  A leak of even a fraction of an entry per edit fails the
  gate; structural oscillation passes.
* ``state_size`` (every engine): the engine's own cell-count gauge.
* queue/pending high-water marks (when a session is driven).

The subject program is deep-copied before editing: ``load_subject`` is
memoized and the pristine instance must stay pristine for the session
(which loads the same subject internally) and for later callers.
"""

from __future__ import annotations

import copy
import time

from ..analyses import ANALYSES
from ..corpus import load_subject
from ..engines import SemiNaiveSolver
from ..robustness import GuardedSolver
from ..service.session import ENGINES, Session, SessionConfig
from ..service.snapshot import take_snapshot
from .stream import EditStream, editor_for


def reference_digest(program, facts) -> str:
    """From-scratch semi-naive solve of ``facts``, digested."""
    reference = SemiNaiveSolver(program)
    for pred, rows in facts.items():
        if rows and pred in reference.idb:
            continue  # extractor emitted a relation the rules derive
        reference.add_facts(pred, rows)
    reference.solve()
    return take_snapshot(reference, 0).digest()


def engine_gauges(inner) -> dict:
    """Engine state-size gauges; Laddder adds its timeline breakdown."""
    gauges = {"state_size": inner.state_size()}
    states = getattr(inner, "_states", None)
    if states and hasattr(inner, "timeline"):  # Laddder
        entries = tuples = longest = 0
        for state in states:
            for relation in state.relations.values():
                for timeline in relation.timelines.values():
                    n = len(timeline)
                    entries += n
                    tuples += 1
                    if n > longest:
                        longest = n
        gauges.update(
            timeline_entries=entries,
            timeline_tuples=tuples,
            timeline_excess=entries - tuples,
            max_timeline_len=longest,
        )
    return gauges


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of ``ys`` over ``xs`` (0.0 under two points)."""
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return numerator / denominator


def soak(
    subject: str,
    analysis: str,
    engine: str = "laddder",
    steps: int = 200,
    seed: int = 7,
    checkpoint_every: int = 25,
    scale: float = 1.0,
    self_check: bool = False,
    drive_session: bool = False,
    flush_size: int = 16,
    flush_latency: float = 0.005,
) -> dict:
    """Replay one seeded edit stream; returns the full soak record.

    The record's ``ok`` field is the CI gate: every checkpoint digest
    (bare solver, and session when driven) equals the from-scratch
    reference, and on Laddder the timeline-excess gauge stayed flat over
    the stream (module docstring).
    """
    program = copy.deepcopy(load_subject(subject, scale=scale))
    instance = ANALYSES[analysis](program)
    inner = instance.make_solver(ENGINES[engine], solve=False)
    solver = GuardedSolver(inner, fallback=False, self_check=self_check)
    solver.solve()

    session = None
    if drive_session:
        session = Session(
            f"soak-{subject}-{analysis}-{engine}",
            SessionConfig(
                analysis=analysis,
                subject=subject,
                engine=engine,
                scale=scale,
                flush_size=flush_size,
                flush_latency=flush_latency,
                self_check=self_check,
            ),
        )

    facts = {pred: set(rows) for pred, rows in instance.facts.items()}
    editor = editor_for(program, analysis)
    stream = EditStream(editor, seed=seed)

    baseline = engine_gauges(inner)
    step_seconds: list[float] = []
    checkpoints: list[dict] = []
    excess_series: list[int] = []
    excess_steps: list[int] = []
    try:
        for index in range(steps):
            step = stream.step()
            step.change.apply_to(facts)
            started = time.perf_counter()
            solver.update(
                insertions=step.change.insertions,
                deletions=step.change.deletions,
            )
            step_seconds.append(time.perf_counter() - started)
            if session is not None:
                session.update(
                    insertions=step.change.insertions,
                    deletions=step.change.deletions,
                )
            if (index + 1) % checkpoint_every and index + 1 != steps:
                continue

            expected = reference_digest(instance.program, facts)
            digest = take_snapshot(solver, 0).digest()
            record = {
                "step": index + 1,
                "reference": expected,
                "digest": digest,
                "match": digest == expected,
                "gauges": engine_gauges(solver.solver),
            }
            if session is not None:
                session.flush()
                record["session_digest"] = session.snapshot.digest()
                record["session_match"] = record["session_digest"] == expected
            checkpoints.append(record)
            if "timeline_excess" in record["gauges"]:
                excess_series.append(record["gauges"]["timeline_excess"])
                excess_steps.append(index + 1)
    finally:
        session_stats = None
        if session is not None:
            metrics = session.metrics
            session_stats = {
                "updates_enqueued": metrics.updates_enqueued,
                "updates_coalesced": metrics.updates_coalesced,
                "coalesce_ratio": metrics.coalesce_ratio,
                "batches_applied": metrics.batches_applied,
                "max_pending": metrics.max_pending,
                "failed_batches": session.failed_batches,
                "last_error": session.last_error,
            }
            session.close()

    digests_ok = all(
        c["match"] and c.get("session_match", True) for c in checkpoints
    )
    # Flatness gate: the slope of excess-vs-step, projected over the whole
    # stream, must not exceed one baseline's worth of excess (floor 16 for
    # near-zero baselines).  Structural oscillation has slope ~0; a leak
    # of even a fraction of an entry per edit projects far past this.
    drift = _slope([float(s) for s in excess_steps],
                   [float(e) for e in excess_series]) * steps
    allowance = max(16.0, float(baseline.get("timeline_excess", 0)))
    excess_ok = not excess_series or drift <= allowance
    ordered = sorted(step_seconds)
    return {
        "subject": subject,
        "analysis": analysis,
        "engine": engine,
        "steps": steps,
        "seed": seed,
        "checkpoint_every": checkpoint_every,
        "self_check": self_check,
        "edit_counts": stream.counts,
        "baseline_gauges": baseline,
        "final_gauges": engine_gauges(solver.solver),
        "timelines_compacted": getattr(
            solver.solver.metrics, "timelines_compacted", 0
        ),
        "latency_seconds": {
            "mean": sum(step_seconds) / len(step_seconds) if step_seconds else 0.0,
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "max": ordered[-1] if ordered else 0.0,
        },
        "checkpoints": checkpoints,
        "digests_ok": digests_ok,
        "excess_series": excess_series,
        "excess_drift": drift,
        "excess_allowance": allowance,
        "excess_ok": excess_ok,
        "session": session_stats,
        "ok": digests_ok and excess_ok and (
            session_stats is None or session_stats["failed_batches"] == 0
        ),
    }
