"""Numeric-literal changes for the value analyses.

Section 7: *"For the constant propagation and interval analyses, we
randomly replace 1000 numeric literals and field reads with the zero
literal."*  A replacement is one epoch (delete the old ``assignlit``
tuple, insert the zeroed one); each replacement is followed by its revert
so every change is measured from the original state.

"Field reads" are ``havoc`` nodes in our encoding; replacing one with a
zero literal turns an unknown value into a constant — included with a
configurable share.
"""

from __future__ import annotations

from ..analyses.base import AnalysisInstance
from .base import Change, rng_for


def literal_to_zero_changes(
    instance: AnalysisInstance,
    count: int,
    seed: int = 0,
    field_read_share: float = 0.25,
) -> list[Change]:
    """``count`` replace/revert pairs (2 * count measured changes)."""
    literals = sorted(
        row for row in instance.facts["assignlit"] if row[2] != 0
    )
    havocs = sorted(instance.facts.get("havoc", ()))
    rng = rng_for(seed)
    changes: list[Change] = []
    for i in range(count):
        use_havoc = havocs and rng.random() < field_read_share
        if use_havoc or not literals:
            node, var = rng.choice(havocs)
            replace = Change(
                label=f"zero-fieldread[{i}] {node}",
                deletions={"havoc": frozenset(((node, var),))},
                insertions={"assignlit": frozenset(((node, var, 0),))},
            )
        else:
            node, var, value = rng.choice(literals)
            replace = Change(
                label=f"zero-literal[{i}] {node}={value}",
                deletions={"assignlit": frozenset(((node, var, value),))},
                insertions={"assignlit": frozenset(((node, var, 0),))},
            )
        changes.append(replace)
        changes.append(replace.inverse())
    return changes
