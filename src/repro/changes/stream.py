"""Seeded, deterministic edit streams (the continuous-edit soak workload).

The paper's evaluation replays single-shot diffs; an IDE session is
hundreds of *successive* edits against one live engine, which is where
per-tuple state accretion and queue-coalescing bugs hide.
:class:`EditStream` generates that workload: a reproducible sequence of
realistic source edits applied through a
:class:`~repro.changes.source_edits.SourceEditor`, each yielding the
fact-level :class:`~repro.changes.base.Change` any solver consumes as one
epoch.

Stream grammar
--------------

Each step draws one edit kind from a weighted distribution (weights are
constructor arguments; the defaults favour the common case):

* ``literal`` — method-body literal churn: overtype a ``ConstAssign``
  value with a fresh small integer, or (35% of draws) type the original
  back in.  Rewriting the current value is allowed — a no-op edit is
  exactly what queue coalescing must absorb.
* ``delete`` — remove a simple statement (never an ``If``/``While``
  header, so no block ever detaches).  Deleted statements join a bounded
  *outstanding pool* (``max_outstanding``).
* ``restore`` — re-insert a random outstanding statement at its old
  position, reviving its label: the delete/re-insert cycle an editor's
  undo produces.  Forced whenever the pool is full.
* ``rename`` — allocation-site rename cascade: retype the class of a
  ``New`` statement to another class the program already allocates
  (half the time, back to the original).

Infeasible kinds (no literals, pool empty, single allocated class) fall
out of the draw, so every program with at least one editable statement
yields an infinite stream.  Determinism: the same ``(program, seed,
weights)`` produce bit-identical edit sequences — the soak harness and CI
replay them against from-scratch re-solves by seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..javalite.ast import ConstAssign, If, JProgram, New, While
from .base import Change, rng_for
from .source_edits import (
    IncrementalSourceEditor,
    SourceEditor,
    pointsto_facts,
    value_facts,
)


def editor_for(
    program: JProgram, analysis: str, incremental: bool = True
) -> SourceEditor:
    """The source editor whose fact extractor matches ``analysis``."""
    kind = "pointsto" if analysis.startswith("pointsto") else "value"
    if incremental:
        return IncrementalSourceEditor(program, kind=kind)
    extractor = pointsto_facts if kind == "pointsto" else value_facts
    return SourceEditor(program, extractor=extractor)


@dataclass(frozen=True)
class StreamStep:
    """One generated edit: its position, kind, and fact-level change."""

    index: int
    kind: str
    change: Change


class EditStream:
    """Weighted, seeded generator of successive source edits."""

    DEFAULT_WEIGHTS = {"literal": 9, "delete": 4, "restore": 4, "rename": 3}
    #: Fraction of literal draws that type the original value back in.
    REVERT_BIAS = 0.35
    #: Fraction of rename draws (on an already-renamed site) that rename back.
    RENAME_BACK_BIAS = 0.5

    def __init__(
        self,
        editor: SourceEditor,
        seed: int = 0,
        max_outstanding: int = 8,
        weights: dict[str, int] | None = None,
    ):
        self.editor = editor
        self.seed = seed
        self.rng = rng_for(seed)
        self.max_outstanding = max_outstanding
        self.weights = dict(self.DEFAULT_WEIGHTS if weights is None else weights)
        #: Per-kind step counts (observability; mirrors the emitted stream).
        #: Keyed over every kind: a full pool forces a ``restore`` even when
        #: its weight is absent or zero.
        self.counts = dict.fromkeys({*self.DEFAULT_WEIGHTS, *self.weights}, 0)

        self._literals: dict[str, object] = {}  # label -> original value
        self._allocs: dict[str, str] = {}  # label -> original class
        self._deletable: list[str] = []
        for method in editor.program.methods():
            for stmt in method.statements():
                if isinstance(stmt, ConstAssign):
                    self._literals[stmt.label] = stmt.value
                elif isinstance(stmt, New):
                    self._allocs[stmt.label] = stmt.cls
                if not isinstance(stmt, (If, While)):
                    self._deletable.append(stmt.label)
        self._classes = sorted(set(self._allocs.values()))
        self._dead: set[str] = set()
        self._outstanding: list[str] = []
        self._renamed: dict[str, str] = {}  # label -> current (renamed) class
        self._index = 0

    # -- generation --------------------------------------------------------

    def step(self) -> StreamStep:
        """Generate and apply the next edit; returns its fact diff."""
        kind = self._pick_kind()
        change = getattr(self, f"_edit_{kind}")()
        self.counts[kind] += 1
        result = StreamStep(self._index, kind, change)
        self._index += 1
        return result

    def take(self, steps: int) -> list[StreamStep]:
        return [self.step() for _ in range(steps)]

    @property
    def outstanding(self) -> tuple[str, ...]:
        """Labels currently deleted and awaiting restoration."""
        return tuple(self._outstanding)

    # -- edit kinds --------------------------------------------------------

    def _pick_kind(self) -> str:
        if len(self._outstanding) >= self.max_outstanding:
            return "restore"
        feasible = {
            "literal": bool(self._live(self._literals)),
            "delete": bool(self._live_deletable()),
            "restore": bool(self._outstanding),
            "rename": len(self._classes) > 1 and bool(self._live(self._allocs)),
        }
        kinds = [k for k, w in self.weights.items() if w > 0 and feasible[k]]
        if not kinds:
            raise RuntimeError("program has no editable statements left")
        return self.rng.choices(kinds, [self.weights[k] for k in kinds])[0]

    def _edit_literal(self) -> Change:
        label = self.rng.choice(self._live(self._literals))
        if self.rng.random() < self.REVERT_BIAS:
            value = self._literals[label]
        else:
            value = self.rng.randrange(-64, 65)
        return self.editor.replace_literal(label, value)

    def _edit_delete(self) -> Change:
        label = self.rng.choice(self._live_deletable())
        change = self.editor.delete_statement(label)
        self._dead.add(label)
        self._outstanding.append(label)
        return change

    def _edit_restore(self) -> Change:
        label = self._outstanding.pop(
            self.rng.randrange(len(self._outstanding))
        )
        change = self.editor.restore_statement(label)
        self._dead.discard(label)
        return change

    def _edit_rename(self) -> Change:
        label = self.rng.choice(self._live(self._allocs))
        original = self._allocs[label]
        current = self._renamed.get(label, original)
        if current != original and self.rng.random() < self.RENAME_BACK_BIAS:
            cls = original
        else:
            cls = self.rng.choice([c for c in self._classes if c != current])
        change = self.editor.rename_allocation(label, cls)
        if cls == original:
            self._renamed.pop(label, None)
        else:
            self._renamed[label] = cls
        return change

    # -- eligibility -------------------------------------------------------

    def _live(self, labels) -> list[str]:
        return [label for label in labels if label not in self._dead]

    def _live_deletable(self) -> list[str]:
        return [label for label in self._deletable if label not in self._dead]
