"""Allocation-site changes for the points-to analyses.

Section 7: *"For the points-to analysis, we randomly delete and re-insert
1000 object allocation sites.  We chose to focus on allocation sites because
these are simple atomic changes that directly affect the results of the
points-to analysis."*

Each sampled site yields two measured changes — the deletion and the
re-insertion — and the sequence is state-restoring: after a delete/insert
pair the input is back to the original, so changes are measured from
comparable states.
"""

from __future__ import annotations

from ..analyses.base import AnalysisInstance
from .base import Change, rng_for


def alloc_site_changes(
    instance: AnalysisInstance, count: int, seed: int = 0
) -> list[Change]:
    """``count`` delete/re-insert pairs of random allocation sites
    (2 * count measured changes)."""
    allocs = sorted(instance.facts["alloc"])
    if not allocs:
        return []
    rng = rng_for(seed)
    changes: list[Change] = []
    for i in range(count):
        row = rng.choice(allocs)
        var, obj, meth = row
        delete = Change(
            label=f"del-alloc[{i}] {obj}",
            deletions={"alloc": frozenset((row,))},
        )
        changes.append(delete)
        changes.append(delete.inverse())
    return changes
