"""Source-level editing scenarios (the paper's stated future work).

Section 7 acknowledges a threat to validity: the benchmark changes are
low-level *fact* changes, and "future work should consider more realistic
editing scenarios with source code-level changes".  This module implements
that scenario end to end for javalite programs:

* :class:`SourceEditor` applies structured edits to a program — replace a
  literal, delete/restore a statement, add an allocation — while keeping
  statement labels stable (labels are assigned once; deleting a statement
  retires its label instead of shifting its successors', exactly how an
  incremental front end would behave).
* After each edit it re-runs the fact extractor and diffs the old and new
  fact sets into a :class:`repro.changes.base.Change`, which any solver
  consumes as one epoch.

One *source* edit typically produces a handful of correlated fact changes
(an ICFG edge rewires, a transfer fact disappears, a call edge moves) — a
more realistic epoch shape than single-tuple changes.
"""

from __future__ import annotations

from typing import Callable

from ..javalite.ast import ConstAssign, If, JProgram, New, Stmt, While
from ..javalite.facts import extract_pointsto_facts, extract_value_facts
from .base import Change, Facts

Extractor = Callable[[JProgram], Facts]


def pointsto_facts(program: JProgram) -> Facts:
    facts, _ = extract_pointsto_facts(program)
    return facts


def value_facts(program: JProgram) -> Facts:
    facts, _ = extract_value_facts(program)
    return facts


def diff_facts(before: Facts, after: Facts, label: str) -> Change:
    """The epoch that turns the ``before`` fact state into ``after``."""
    insertions: dict[str, frozenset] = {}
    deletions: dict[str, frozenset] = {}
    for pred in set(before) | set(after):
        old = before.get(pred, set())
        new = after.get(pred, set())
        added = frozenset(new - old)
        removed = frozenset(old - new)
        if added:
            insertions[pred] = added
        if removed:
            deletions[pred] = removed
    return Change(label=label, insertions=insertions, deletions=deletions)


class SourceEditor:
    """Apply labelled source edits and produce per-edit fact diffs."""

    def __init__(self, program: JProgram, extractor: Extractor = value_facts):
        self.program = program
        self.extractor = extractor
        self._facts = extractor(program)
        self._label_counter = self._max_label() + 1
        #: label -> (owning block, position, statement) for deleted
        #: statements, so :meth:`restore_statement` can undo the delete.
        self._deleted: dict[str, tuple[list[Stmt], int, Stmt]] = {}

    # -- edit operations ---------------------------------------------------

    def replace_literal(self, label: str, value: object) -> Change:
        """``x = <old>`` becomes ``x = value`` at the labelled statement."""
        stmt = self._find(label)
        if not isinstance(stmt, ConstAssign):
            raise ValueError(f"{label} is not a literal assignment")
        old = stmt.value
        stmt.value = value
        return self._emit(
            f"replace-literal {label}: {old!r} -> {value!r}",
            method=label.rsplit("/", 1)[0],
        )

    def delete_statement(self, label: str) -> Change:
        """Remove the labelled statement (its label is retired, not reused,
        unless :meth:`restore_statement` later revives it)."""
        for method in self.program.methods():
            block = self._owning_block(method.body, label)
            if block is not None:
                index = next(
                    i for i, s in enumerate(block) if s.label == label
                )
                self._deleted[label] = (block, index, block[index])
                del block[index]
                return self._emit(
                    f"delete-stmt {label}", method=method.qualified
                )
        raise KeyError(f"no statement labelled {label}")

    def restore_statement(self, label: str) -> Change:
        """Undo a prior :meth:`delete_statement`: re-insert the statement at
        its old position (clamped to the block's current length), reviving
        its original label — the delete/re-insert cycle an editor's undo
        produces."""
        try:
            block, index, stmt = self._deleted.pop(label)
        except KeyError:
            raise KeyError(f"{label} was not deleted by this editor") from None
        block.insert(min(index, len(block)), stmt)
        return self._emit(
            f"restore-stmt {label}", method=label.rsplit("/", 1)[0]
        )

    def rename_allocation(self, label: str, cls: str) -> Change:
        """``var = new <Old>()`` becomes ``var = new cls()`` at the labelled
        allocation site."""
        stmt = self._find(label)
        if not isinstance(stmt, New):
            raise ValueError(f"{label} is not an allocation")
        old = stmt.cls
        stmt.cls = cls
        return self._emit(
            f"rename-alloc {label}: {old} -> {cls}",
            method=label.rsplit("/", 1)[0],
        )

    def insert_allocation(self, method: str, var: str, cls: str) -> Change:
        """Append ``var = new cls()`` to a method body with a fresh label."""
        target = self.program.method(method)
        stmt = New(f"{method}/{var}", cls)
        stmt.label = f"{method}/{self._label_counter}"
        self._label_counter += 1
        target.body.append(stmt)
        return self._emit(f"insert-alloc {stmt.label} {cls}", method=method)

    def checkpoint(self) -> Facts:
        """Snapshot the current fact state (for external verification)."""
        return {pred: set(rows) for pred, rows in self._facts.items()}

    # -- plumbing ------------------------------------------------------------

    def _emit(self, label: str, method: str | None = None) -> Change:
        before = self._facts
        after = self.extractor(self.program)
        change = diff_facts(before, after, label)
        self._facts = after
        return change

    def _find(self, label: str) -> Stmt:
        for method in self.program.methods():
            for stmt in method.statements():
                if stmt.label == label:
                    return stmt
        raise KeyError(f"no statement labelled {label}")

    def _owning_block(self, block: list[Stmt], label: str) -> list[Stmt] | None:
        for stmt in block:
            if stmt.label == label:
                return block
            if isinstance(stmt, If):
                found = self._owning_block(stmt.then_block, label)
                if found is None:
                    found = self._owning_block(stmt.else_block, label)
                if found is not None:
                    return found
            elif isinstance(stmt, While):
                found = self._owning_block(stmt.body, label)
                if found is not None:
                    return found
        return None

    def _max_label(self) -> int:
        highest = -1
        for method in self.program.methods():
            for stmt in method.statements():
                try:
                    highest = max(highest, int(stmt.label.rsplit("/", 1)[1]))
                except (IndexError, ValueError):
                    continue
        return highest


class IncrementalSourceEditor(SourceEditor):
    """A :class:`SourceEditor` whose front end is incremental too.

    Instead of re-extracting the whole program after every edit, it
    re-extracts only the edited method's fact slice
    (:class:`repro.javalite.incremental.IncrementalExtractor`), so the
    end-to-end edit loop cost is proportional to the method — closing the
    gap the source-edit benchmark measures for the naive front end.

    ``kind`` is ``"value"`` or ``"pointsto"``.
    """

    def __init__(self, program: JProgram, kind: str = "value"):
        from ..javalite.incremental import IncrementalExtractor

        self._incremental = IncrementalExtractor(program, kind=kind)
        extractor = pointsto_facts if kind == "pointsto" else value_facts
        super().__init__(program, extractor=extractor)
        # The base captured a full extraction; keep the incremental slices
        # as the authoritative state from here on.
        self._facts = self._incremental.facts()

    def _emit(self, label: str, method: str | None = None) -> Change:
        if method is None:
            return super()._emit(label)
        inserted, deleted = self._incremental.refresh(method)
        change = Change(
            label=label,
            insertions={pred: frozenset(rows) for pred, rows in inserted.items()},
            deletions={pred: frozenset(rows) for pred, rows in deleted.items()},
        )
        change.apply_to(self._facts)
        return change
