"""Flow-sensitive inter-procedural value analyses over the ICFG.

Shared machinery for constant propagation and interval analysis (Section 7:
"Both of these analyses are flow-sensitive and inter-procedural, the only
difference is in the lattice abstraction used to track values of
integer-typed variables").

The analysis computes ``val(node, var, v)`` — the abstract value of ``var``
on entry to ``node`` — as a recursive lattice aggregation:

* transfer along intra-procedural ``flow`` edges (literal assignment, copy,
  abstract binary arithmetic, havoc for unmodelled statements),
* a frame rule for variables the predecessor does not assign,
* parameter passing into CHA call edges and return-value flow out of them.

The lattice and the abstract transfer functions are injected by the
concrete analyses; everything else is this one rule set.
"""

from __future__ import annotations

from typing import Callable

from ..datalog.parser import parse
from ..datalog.program import Program
from ..javalite.ast import JProgram
from ..javalite.facts import extract_value_facts
from ..lattices import Aggregator
from .base import AnalysisInstance

_VALUE_RULES = """
    vcand(N2, V, C) :- flow(N1, N2), val(N1, V, C), !assigns(N1, V).
    vcand(N2, V, C) :- flow(N1, N2), assignlit(N1, V, Lit), C := mkval(Lit).
    vcand(N2, V, C) :- flow(N1, N2), assignmove(N1, V, W), val(N1, W, C).
    vcand(N2, V, C) :- flow(N1, N2), assignbin(N1, V, Op, A, B),
                       val(N1, A, CA), val(N1, B, CB), C := absbin(Op, CA, CB).
    vcand(N2, V, C) :- flow(N1, N2), havoc(N1, V), C := topval().
    vcand(N2, V, C) :- flow(N1, N2), callret(N1, V), calledge(N1, M),
                       exitnode(M, X), returnvar(M, RV), val(X, RV, C).

    vcand(EN, Frm, C) :- calledge(N, M), entrynode(M, EN),
                         actualarg(N, I, Act), formalarg(M, I, Frm),
                         val(N, Act, C).

    assigns(N, V) :- assignlit(N, V, _).
    assigns(N, V) :- assignmove(N, V, _).
    assigns(N, V) :- assignbin(N, V, _, _, _).
    assigns(N, V) :- havoc(N, V).
    assigns(N, V) :- callret(N, V).

    val(N, V, agg<C>) :- vcand(N, V, C).

    .export val.
"""


def build_value_analysis(
    subject: JProgram,
    name: str,
    aggregator: Aggregator,
    mkval: Callable[[object], object],
    absbin: Callable[[str, object, object], object],
    topval: Callable[[], object],
) -> AnalysisInstance:
    """Instantiate the shared flow-sensitive rules with a value domain."""
    facts, icfg = extract_value_facts(subject)
    program: Program = parse(_VALUE_RULES)
    program.register_function("mkval", mkval)
    program.register_function("absbin", absbin)
    program.register_function("topval", topval)
    program.register_aggregator("agg", aggregator)
    return AnalysisInstance(
        name=name,
        program=program,
        facts=facts,
        primary="val",
        subject=subject,
        context={"icfg": icfg, "lattice": aggregator.lattice},
    )
