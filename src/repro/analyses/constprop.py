"""Flow-sensitive inter-procedural constant propagation (Section 7)."""

from __future__ import annotations

from ..javalite.ast import JProgram
from ..lattices import Const, ConstantLattice, lub
from .base import AnalysisInstance
from .valueflow import build_value_analysis

_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def constant_propagation(subject: JProgram) -> AnalysisInstance:
    """Track definite constants of integer-typed locals per ICFG node."""
    lattice = ConstantLattice()

    def absbin(op: str, a, b):
        if isinstance(a, Const) and isinstance(b, Const):
            fn = _OPS.get(op)
            if fn is not None:
                return Const(fn(a.value, b.value))
        if a == lattice.BOT or b == lattice.BOT:
            return lattice.BOT
        return lattice.TOP

    return build_value_analysis(
        subject,
        name="constprop",
        aggregator=lub(lattice),
        mkval=Const,
        absbin=absbin,
        topval=lattice.top,
    )
