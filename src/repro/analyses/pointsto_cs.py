"""Context-sensitive (1-call-site) k-update points-to analysis.

Doop's precision story revolves around context sensitivity; the paper's
benchmark analysis is context-insensitive ("context-insensitive,
flow-insensitive, yet inter-procedural"), so this variant is an extension:
every points-to judgment carries a *context* — the call site through which
the enclosing method was entered (1-call-site sensitivity, context strings
``"root"`` for the entry method).  The heap stays context-insensitive
(field cells are merged across contexts), the standard Doop configuration.

Relations mirror the insensitive analysis with a context column:

* ``reach(meth, ctx)`` — the method is analyzed under ``ctx``;
* ``ptlub(var, ctx, set)`` — the k-update points-to set of a local under
  the context of its enclosing method's activation;
* ``resolvecall(site, meth, ctx, calleectx)`` — the resolved call edge with
  the caller's and the callee's contexts (``calleectx`` = the site).

Still eventually ⊑-monotonic, so it runs on Laddder (and the reference
engines) unchanged — context sensitivity multiplies the tuple space, not
the solver requirements.
"""

from __future__ import annotations

from ..datalog.parser import parse
from ..javalite.ast import JProgram
from ..javalite.facts import extract_pointsto_facts
from ..lattices import KSetLattice, lub
from .base import AnalysisInstance

ROOT_CONTEXT = "root"

_RULES = """
    pt(V, Ctx, S)    :- reach(M, Ctx), alloc(V, Obj, M), S := mkset(Obj).
    pt(V, Ctx, S)    :- move(V, F), ptlub(F, Ctx, S).
    pt(This, CCtx, S) :- resolve(_, _, This, CCtx, S).
    ptlub(V, Ctx, lub<S>) :- pt(V, Ctx, S).

    resolve(Site, M, This, CCtx, S2) :- ptlub(Rcv, Ctx, S),
        vcall(Rcv, Sig, Site, InM), reach(InM, Ctx), ?isconc(S),
        otype(Obj, Cls), ?inset(Obj, S), lookup(Cls, Sig, M),
        thisvar(M, This), S2 := mkset(Obj), CCtx := pushctx(Site).
    resolve(Site, M, This, CCtx, S2) :- ptlub(Rcv, Ctx, S),
        vcall(Rcv, Sig, Site, InM), reach(InM, Ctx), ?istop(S),
        lookupany(Sig, M), thisvar(M, This), S2 := ktop(),
        CCtx := pushctx(Site).
    lookupany(Sig, M) :- lookup(_, Sig, M).

    resolvecall(Site, M, Ctx, CCtx) :- resolve(Site, M, _, CCtx, _),
        vcall(_, _, Site, InM), reach(InM, Ctx).
    resolvecall(Site, M, Ctx, CCtx) :- scall(Site, M, InM), reach(InM, Ctx),
        CCtx := pushctx(Site).

    reach(M, CCtx) :- resolvecall(_, M, _, CCtx).
    reach(M, Ctx)  :- funcname(M, "main"), Ctx := rootctx().

    pt(Frm, CCtx, S) :- resolvecall(Site, M, Ctx, CCtx),
        actualarg(Site, I, Act), formalarg(M, I, Frm), ptlub(Act, Ctx, S).
    pt(Ret, Ctx, S) :- resolvecall(Site, M, Ctx, CCtx), callret(Site, Ret),
        returnvar(M, RV), ptlub(RV, CCtx, S).

    fieldcand(F, S) :- storef(_, F, Src), ptlub(Src, _, S).
    fieldval(F, flub<S>) :- fieldcand(F, S).
    pt(V, Ctx, S) :- loadf(V, Base, F), ptlub(Base, Ctx, _), fieldval(F, S).

    .export ptlub, reach, resolvecall.
"""


def onecall_pointsto(subject: JProgram, k: int = 5) -> AnalysisInstance:
    """Build the 1-call-site-sensitive k-update points-to analysis."""
    facts, hierarchy = extract_pointsto_facts(subject)
    lattice = KSetLattice(k)
    program = parse(_RULES)
    program.register_function("mkset", lambda obj: frozenset((obj,)))
    program.register_function("ktop", lambda: lattice.top())
    program.register_function("pushctx", lambda site: site)
    program.register_function("rootctx", lambda: ROOT_CONTEXT)
    program.register_test("isconc", lattice.is_concrete)
    program.register_test("istop", lambda s: s == lattice.top())
    program.register_test("inset", lambda obj, s: obj in s)
    program.register_aggregator("lub", lub(lattice))
    program.register_aggregator("flub", lub(lattice))
    return AnalysisInstance(
        name=f"pointsto-1cs(k={k})",
        program=program,
        facts=facts,
        primary="ptlub",
        subject=subject,
        context={"hierarchy": hierarchy, "lattice": lattice, "k": k},
    )
