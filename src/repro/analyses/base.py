"""Packaged analysis instances: Datalog rules + extracted facts + metadata.

An :class:`AnalysisInstance` bundles everything a solver needs, plus the
bits the evaluation harness needs: the *primary* output relation whose
tuple diff defines a change's **impact** (Section 3 measures "the number of
affected points-to tuples (relation PT)" / "affected value assignments"),
and a handle to the subject program for change synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Type

from ..datalog.program import Program
from ..engines.base import Solver
from ..javalite.ast import JProgram
from ..metrics import SolverMetrics

Facts = dict[str, set[tuple]]


@dataclass
class AnalysisInstance:
    """One analysis, instantiated on one subject program."""

    name: str
    program: Program
    facts: Facts
    #: The output relation whose diff defines impact (e.g. ``ptlub``).
    primary: str
    subject: JProgram | None = None
    #: Extra artifacts change generators may need (hierarchy, icfg, ...).
    context: dict = field(default_factory=dict)

    def make_solver(
        self,
        engine_cls: Type[Solver],
        solve: bool = True,
        metrics: SolverMetrics | None = None,
        provenance: bool | None = None,
    ) -> Solver:
        """Instantiate ``engine_cls`` on this analysis and optionally run the
        initial (from-scratch) evaluation.  ``provenance`` opts the solver
        into per-tuple annotation capture (docs/PROVENANCE.md); ``None``
        defers to the ``REPRO_PROVENANCE`` environment default."""
        solver = engine_cls(self.program, metrics=metrics, provenance=provenance)
        for pred, rows in self.facts.items():
            if rows and pred in solver.idb:
                continue  # extractor emitted a relation the rules derive
            solver.add_facts(pred, rows)
        if solve:
            solver.solve()
        return solver

    def fact_count(self) -> int:
        return sum(len(rows) for rows in self.facts.values())
