"""Flow-sensitive inter-procedural interval analysis (Section 7).

Same rules as constant propagation, with the interval abstraction and a
*widening* aggregator so loop counters stabilize (ASM2(iii)); the widening
thresholds are configurable.
"""

from __future__ import annotations

from typing import Sequence

from ..javalite.ast import JProgram
from ..lattices import Interval, IntervalLattice, widen
from ..lattices.interval import DEFAULT_THRESHOLDS
from .base import AnalysisInstance
from .valueflow import build_value_analysis


def interval_analysis(
    subject: JProgram,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> AnalysisInstance:
    """Track integer ranges of locals per ICFG node, with widening."""
    lattice = IntervalLattice(thresholds)

    def absbin(op: str, a, b):
        if op == "+":
            return lattice.add(a, b)
        if op == "-":
            return lattice.sub(a, b)
        if op == "*":
            return lattice.mul(a, b)
        return lattice.top()

    def mkval(lit) -> object:
        if isinstance(lit, (int, float)):
            return IntervalLattice.point(lit)
        return lattice.top()

    return build_value_analysis(
        subject,
        name="interval",
        aggregator=widen(lattice),
        mkval=mkval,
        absbin=absbin,
        topval=lattice.top,
    )
