"""Whole-program points-to analyses (the Figure 1 family).

Three variants over the same Doop-style facts, differing only in the value
abstraction — exactly how Section 7 sets them up:

* :func:`singleton_pointsto` — the ``Bot ⊑ O(obj) ⊑ C(cls)`` domain of
  Figures 1/3/4 (k-update with k = 1, modelled with the class fallback).
* :func:`kupdate_pointsto` — concrete sets up to ``k`` objects, saturating
  to Top with signature-based resolution ("over-approximates to Top only if
  a points-to set grows beyond a fixed size k").  Eventually ⊑-monotonic:
  needs Laddder.
* :func:`setbased_pointsto` — the powerset analysis used for the DRedL
  comparison in Section 7.3 (per-rule monotone).

All three are context- and flow-insensitive but inter-procedural: the call
graph is derived *from* points-to results (``resolve``), parameters and
returns flow through resolved edges, and fields are modelled field-based
(one abstract cell per field name).
"""

from __future__ import annotations

from ..datalog.parser import parse
from ..datalog.program import Program
from ..javalite.ast import JProgram
from ..javalite.facts import extract_pointsto_facts
from ..lattices import C, KSetLattice, O, PowersetLattice, SingletonLattice, lub
from .base import AnalysisInstance

#: Rules shared by every variant: reachability, call resolution plumbing,
#: parameter/return flow, and field-based heap flow.  The variants provide
#: the ``resolve`` rules and the lattice injection ``objlat``.
_COMMON_RULES = """
    pt(V, L)    :- reach(M), alloc(V, Obj, M), L := objlat(Obj).
    pt(V, L)    :- move(V, F), ptlub(F, L).
    pt(This, L) :- resolve(_, _, This, L).
    ptlub(V, lub<L>) :- pt(V, L).

    reach(M) :- resolve(_, M, _, _).
    reach(M) :- scall(_, M, InM), reach(InM).
    reach(M) :- funcname(M, "main").

    resolvecall(Site, M) :- resolve(Site, M, _, _).
    resolvecall(Site, M) :- scall(Site, M, InM), reach(InM).

    pt(Frm, L) :- resolvecall(Site, M), actualarg(Site, I, Act),
                  formalarg(M, I, Frm), ptlub(Act, L).
    pt(Ret, L) :- resolvecall(Site, M), callret(Site, Ret),
                  returnvar(M, RV), ptlub(RV, L).

    fieldcand(F, L) :- storef(_, F, S), ptlub(S, L).
    fieldval(F, lub<L>) :- fieldcand(F, L).
    pt(V, L) :- loadf(V, _, F), fieldval(F, L).

    .export ptlub, reach, resolvecall.
"""


def _base_program(rules: str) -> Program:
    return parse(_COMMON_RULES + rules)


def singleton_pointsto(subject: JProgram) -> AnalysisInstance:
    """Figure 1's lattice-based singleton points-to analysis."""
    facts, hierarchy = extract_pointsto_facts(subject)
    lattice = SingletonLattice(hierarchy)
    program = _base_program(
        """
        resolve(Site, M, This, L) :- ptlub(Rcv, L), vcall(Rcv, Sig, Site, InM),
            reach(InM), ?isobj(L), Obj := objof(L), otype(Obj, Cls),
            lookup(Cls, Sig, M), thisvar(M, This).
        resolve(Site, M, This, L) :- ptlub(Rcv, L), vcall(Rcv, Sig, Site, InM),
            reach(InM), ?iscls(L), Cls := clsof(L),
            lookupsub(Cls, Sig, M), thisvar(M, This).
        """
    )
    program.register_function("objlat", O)
    program.register_function("objof", lambda lat: lat.obj)
    program.register_function("clsof", lambda lat: lat.cls)
    program.register_test("isobj", lambda lat: isinstance(lat, O))
    program.register_test("iscls", lambda lat: isinstance(lat, C))
    program.register_aggregator("lub", lub(lattice))
    return AnalysisInstance(
        name="pointsto-singleton",
        program=program,
        facts=facts,
        primary="ptlub",
        subject=subject,
        context={"hierarchy": hierarchy, "lattice": lattice},
    )


def kupdate_pointsto(subject: JProgram, k: int = 5) -> AnalysisInstance:
    """The k-update points-to analysis of Section 7 (default k = 5)."""
    facts, hierarchy = extract_pointsto_facts(subject)
    lattice = KSetLattice(k)
    program = _base_program(
        """
        resolve(Site, M, This, L2) :- ptlub(Rcv, S), vcall(Rcv, Sig, Site, InM),
            reach(InM), ?isconc(S), otype(Obj, Cls), ?inset(Obj, S),
            lookup(Cls, Sig, M), thisvar(M, This), L2 := mkset(Obj).
        resolve(Site, M, This, L2) :- ptlub(Rcv, S), vcall(Rcv, Sig, Site, InM),
            reach(InM), ?istop(S), lookupany(Sig, M), thisvar(M, This),
            L2 := ktop().
        lookupany(Sig, M) :- lookup(_, Sig, M).
        """
    )
    program.register_function("objlat", lambda obj: frozenset((obj,)))
    program.register_function("mkset", lambda obj: frozenset((obj,)))
    program.register_function("ktop", lambda: lattice.top())
    program.register_test("isconc", lattice.is_concrete)
    program.register_test("istop", lambda s: s == lattice.top())
    program.register_test("inset", lambda obj, s: obj in s)
    program.register_aggregator("lub", lub(lattice))
    return AnalysisInstance(
        name=f"pointsto-kupdate(k={k})",
        program=program,
        facts=facts,
        primary="ptlub",
        subject=subject,
        context={"hierarchy": hierarchy, "lattice": lattice, "k": k},
    )


def setbased_pointsto(subject: JProgram) -> AnalysisInstance:
    """The powerset (set-based) points-to analysis of Section 7.3."""
    facts, hierarchy = extract_pointsto_facts(subject)
    lattice = PowersetLattice()
    program = _base_program(
        """
        resolve(Site, M, This, L2) :- ptlub(Rcv, S), vcall(Rcv, Sig, Site, InM),
            reach(InM), otype(Obj, Cls), ?inset(Obj, S),
            lookup(Cls, Sig, M), thisvar(M, This), L2 := mkset(Obj).
        """
    )
    program.register_function("objlat", lambda obj: frozenset((obj,)))
    program.register_function("mkset", lambda obj: frozenset((obj,)))
    program.register_test("inset", lambda obj, s: obj in s)
    program.register_aggregator("lub", lub(lattice))
    return AnalysisInstance(
        name="pointsto-setbased",
        program=program,
        facts=facts,
        primary="ptlub",
        subject=subject,
        context={"hierarchy": hierarchy, "lattice": lattice},
    )
