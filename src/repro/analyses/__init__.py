"""The paper's whole-program analyses, packaged per subject program.

Registry keys match the evaluation harness (DESIGN.md experiment index).
"""

from .base import AnalysisInstance
from .constprop import constant_propagation
from .interval import interval_analysis
from .pointsto import kupdate_pointsto, setbased_pointsto, singleton_pointsto
from .pointsto_cs import onecall_pointsto
from .sign import sign_analysis
from .taint import taint_analysis
from .valueflow import build_value_analysis

#: name -> builder(subject) used by benchmarks and examples.
ANALYSES = {
    "pointsto-kupdate": kupdate_pointsto,
    "pointsto-singleton": singleton_pointsto,
    "pointsto-setbased": setbased_pointsto,
    "pointsto-1cs": onecall_pointsto,
    "constprop": constant_propagation,
    "interval": interval_analysis,
    "sign": sign_analysis,
    "taint": taint_analysis,
}

__all__ = [
    "ANALYSES",
    "AnalysisInstance",
    "build_value_analysis",
    "constant_propagation",
    "interval_analysis",
    "kupdate_pointsto",
    "onecall_pointsto",
    "setbased_pointsto",
    "sign_analysis",
    "singleton_pointsto",
    "taint_analysis",
]
