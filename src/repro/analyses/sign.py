"""Flow-sensitive sign analysis — a third value abstraction.

Demonstrates how cheaply the shared flow-sensitive framework
(:mod:`repro.analyses.valueflow`) retargets to a new finite domain; also a
fully enumerable lattice for exhaustive property checks.
"""

from __future__ import annotations

from ..javalite.ast import JProgram
from ..lattices import lub
from ..lattices.sign import SignLattice
from .base import AnalysisInstance
from .valueflow import build_value_analysis


def sign_analysis(subject: JProgram) -> AnalysisInstance:
    """Track integer signs of locals per ICFG node."""
    lattice = SignLattice()

    def absbin(op: str, a, b):
        if op == "+":
            return lattice.add(a, b)
        if op == "-":
            return lattice.sub(a, b)
        if op == "*":
            return lattice.mul(a, b)
        return lattice.top()

    def mkval(lit) -> object:
        if isinstance(lit, (int, float)):
            return SignLattice.of(lit)
        return lattice.top()

    return build_value_analysis(
        subject,
        name="sign",
        aggregator=lub(lattice),
        mkval=mkval,
        absbin=absbin,
        topval=lattice.top,
    )
