"""Whole-program taint analysis layered on points-to (a downstream client).

The paper's introduction motivates points-to as "a fundamental analysis
underpinning many other analyses, such as control-flow analysis or taint
analysis".  This analysis demonstrates that layering inside the solver
framework: its rules *consume the exported, pruned relations* of the
points-to component (``resolvecall``, ``reach``) from an upstream dependency
component — exercising stratified cross-component dataflow with lattice
exports — and add their own recursive aggregation over a taint lattice.

Model:

* sources — designated methods whose return value is tainted
  (``taintsource(meth)`` facts, by default every ``Util*.helper0``);
* propagation — through moves, binary operations, parameter passing and
  returns along *resolved* call edges (so precision follows the points-to
  call graph, not CHA);
* level lattice — ``untainted ⊑ tainted`` (a 2-chain); joins make any
  mixed flow tainted.

Exported: ``taint(var, level)`` — the pruned per-variable taint level, and
``sink_alert(site, var)`` for tainted actuals flowing into sink methods.
"""

from __future__ import annotations

from ..datalog.parser import parse
from ..javalite.ast import JProgram
from ..lattices import ChainLattice, lub
from .base import AnalysisInstance
from .pointsto import kupdate_pointsto

LEVELS = ChainLattice(["untainted", "tainted"])

_TAINT_RULES = """
    tcand(Ret, L) :- taintsource(M), resolvecall(Site, M), callret(Site, Ret),
                     L := tainted().
    tcand(To, L)  :- tmove(To, From), taint(From, L).
    tcand(Frm, L) :- resolvecall(Site, M), actualarg(Site, I, Act),
                     formalarg(M, I, Frm), taint(Act, L).
    tcand(Ret, L) :- resolvecall(Site, M), !taintsource(M), callret(Site, Ret),
                     returnvar(M, RV), taint(RV, L).
    tcand(V, L)   :- seedvar(V), L := untaintedv().

    taint(V, lubt<L>) :- tcand(V, L).

    sink_alert(Site, Act) :- taintsink(M), resolvecall(Site, M),
                             actualarg(Site, _, Act), taint(Act, L),
                             ?istainted(L).

    .export taint, sink_alert.
"""


def taint_analysis(
    subject: JProgram,
    sources: set[str] | None = None,
    sinks: set[str] | None = None,
    k: int = 5,
) -> AnalysisInstance:
    """Build the taint analysis stacked on the k-update points-to analysis.

    ``sources``/``sinks`` are qualified method names; defaults pick the
    first utility helper as source and the last driver as sink so generated
    corpora have flows out of the box.
    """
    base = kupdate_pointsto(subject, k=k)
    program = base.program.copy()
    parse(_TAINT_RULES, program=program)
    program.register_function("tainted", lambda: "tainted")
    program.register_function("untaintedv", lambda: "untainted")
    program.register_test("istainted", lambda level: level == "tainted")
    program.register_aggregator("lubt", lub(LEVELS))
    program.exports = (program.exports or set()) | {
        "taint", "sink_alert", "resolvecall", "reach", "ptlub",
    }

    facts = {pred: set(rows) for pred, rows in base.facts.items()}
    methods = sorted(m.qualified for m in subject.methods())
    if sources is None:
        sources = {m for m in methods if m.endswith(".helper0")} or set(methods[:1])
    if sinks is None:
        drivers = [m for m in methods if ".driver" in m]
        sinks = {drivers[-1]} if drivers else set()
    facts["taintsource"] = {(m,) for m in sources}
    facts["taintsink"] = {(m,) for m in sinks}
    # Taint flows along the same moves as values; alias the relation so the
    # taint component depends only on exported upstream relations.
    facts["tmove"] = set(facts["move"])
    # Every data-flow variable starts untainted, so taint/2 carries a level
    # for each of them (Bot-as-absent would also be sound, but explicit
    # levels make the exported relation self-describing).
    seedvars = {row[0] for row in facts["move"]}
    seedvars |= {row[1] for row in facts["move"]}
    seedvars |= {row[0] for row in facts["alloc"]}
    seedvars |= {row[2] for row in facts["actualarg"]}
    seedvars |= {row[1] for row in facts["callret"]}
    seedvars |= {row[2] for row in facts["formalarg"]}
    seedvars |= {row[1] for row in facts["returnvar"]}
    facts["seedvar"] = {(v,) for v in seedvars}

    return AnalysisInstance(
        name=f"taint(on k={k} points-to)",
        program=program,
        facts=facts,
        primary="taint",
        subject=subject,
        context={**base.context, "sources": sources, "sinks": sinks},
    )
