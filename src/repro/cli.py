"""Command-line interface: ``python -m repro``.

Subcommands mirroring the library's main workflows:

* ``analyze``  — run one of the five analyses on a benchmark subject (or a
  scaled variant) with a chosen engine; print exported relations.
* ``impact``   — the Section 3 methodology: synthesize changes, measure
  impacts, print the Figure 2 histogram.
* ``bench``    — a one-shot update-time measurement (init + change series
  distribution) without the pytest harness.
* ``check``    — static diagnostics (docs/STATIC_CHECKS.md) for bundled
  analyses and/or ``.dl`` source files; exit 2 on errors, 1 on warnings.
* ``serve``    — the resident analysis service (docs/SERVICE.md): long-
  lived sessions behind a JSON-lines protocol over stdio or a TCP socket.

Examples::

    python -m repro analyze pointsto-kupdate minijavac
    python -m repro analyze constprop antlr --engine seminaive --limit 10
    python -m repro analyze sign minijavac --profile
    python -m repro impact interval minijavac --changes 20
    python -m repro bench pointsto-kupdate pmd --engine dredl
    python -m repro bench constprop minijavac --profile-json profile.json
    python -m repro check --all
    python -m repro check examples/reachability.dl --json -
    python -m repro serve
    python -m repro serve --host 127.0.0.1 --port 8750

``analyze`` and ``bench`` accept ``--profile`` (per-stratum and per-rule
solver metrics as an ASCII table) and ``--profile-json FILE`` (the same
data in the JSON schema of docs/OBSERVABILITY.md; ``-`` for stdout).

``serve``, ``analyze``, and ``bench`` shut down gracefully on SIGINT or
SIGTERM: in-flight work is drained or abandoned cleanly, ``--profile-json``
metrics collected so far are still written, and the process exits with the
documented interrupt code instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .analyses import ANALYSES
from .datalog.errors import (
    BudgetExceededError,
    CheckpointError,
    DatalogError,
    InvariantViolationError,
    RetryExhaustedError,
    RollbackError,
    ShutdownRequested,
    SolverError,
    WorkerCrashError,
)
from .bench import (
    DISTRIBUTION_HEADERS,
    Distribution,
    distribution_row,
    format_table,
    run_update_benchmark,
)
from .changes import alloc_site_changes, literal_to_zero_changes
from .corpus import PRESETS, load_subject
from .engines import explain
from .methodology import bucket_impacts, format_histogram, measure_impacts
from .metrics import SolverMetrics, format_profile
from .robustness import GuardedSolver
from .service import install_signal_handlers
from .service.session import ENGINES

#: Exit code for a SIGINT/SIGTERM-interrupted run that unwound cleanly
#: (in-flight batches drained, profile flushed) — docs/SERVICE.md.
EXIT_INTERRUPTED = 7

#: Exit codes for the typed failure modes (documented in docs/ROBUSTNESS.md
#: and docs/SERVICE.md).
EXIT_CODES = {
    BudgetExceededError: 3,
    InvariantViolationError: 4,
    CheckpointError: 5,
    RollbackError: 6,
    ShutdownRequested: EXIT_INTERRUPTED,
    WorkerCrashError: 8,
    RetryExhaustedError: 9,
}


def _changes_for(instance, count: int, seed: int):
    if instance.primary == "val":
        return literal_to_zero_changes(instance, count, seed=seed)
    return alloc_site_changes(instance, count, seed=seed)


def _build(args):
    subject = load_subject(args.subject, scale=args.scale)
    instance = ANALYSES[args.analysis](subject)
    return subject, instance


def _make_metrics(args) -> SolverMetrics | None:
    """A collector when ``--profile``/``--profile-json`` asked for one."""
    if args.profile or args.profile_json:
        return SolverMetrics()
    return None


def _solver_setup(args):
    """A per-solver configuration hook for ``--deadline``/``--self-check``."""
    deadline = getattr(args, "deadline", None)
    self_check = getattr(args, "self_check", False)
    if deadline is None and not self_check:
        return None

    def setup(solver):
        if deadline is not None:
            solver.budget.deadline = deadline
        if self_check:
            solver.self_check = True

    return setup


def _emit_profile(args, metrics: SolverMetrics | None) -> None:
    if metrics is None:
        return
    if args.profile:
        print()
        print(format_profile(metrics))
    if args.profile_json:
        payload = json.dumps(metrics.to_dict(), indent=2, sort_keys=True)
        if args.profile_json == "-":
            print(payload)
        else:
            try:
                with open(args.profile_json, "w") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"error: cannot write profile: {exc}", file=sys.stderr)
                return
            print(f"profile written to {args.profile_json}")


def _interrupted(args, metrics: SolverMetrics | None, exc) -> int:
    """Graceful-shutdown epilogue for ``analyze``/``bench``: report, flush
    any partial ``--profile``/``--profile-json`` metrics, exit code 7."""
    print(f"interrupted: {exc}; flushing metrics and exiting cleanly",
          file=sys.stderr)
    _emit_profile(args, metrics)
    return EXIT_INTERRUPTED


def cmd_analyze(args) -> int:
    """``analyze``: run and print an analysis result relation."""
    from pathlib import Path

    from .engines.checkpoint import load_checkpoint, save_checkpoint

    subject, instance = _build(args)
    engine = ENGINES[args.engine]
    metrics = _make_metrics(args)
    setup = _solver_setup(args)
    ckpt = Path(args.checkpoint) if args.checkpoint else None
    start = time.perf_counter()
    restored = ckpt is not None and ckpt.exists()
    restore_signals = install_signal_handlers()
    try:
        if restored:
            inner = load_checkpoint(engine, instance.program, ckpt, metrics=metrics)
        else:
            inner = instance.make_solver(engine, solve=False, metrics=metrics)
        if setup is not None:
            setup(inner)
        solver = GuardedSolver(inner) if args.guard else inner
        if not restored:
            solver.solve()
            if ckpt is not None:
                save_checkpoint(inner, ckpt)
    except ShutdownRequested as exc:
        return _interrupted(args, metrics, exc)
    finally:
        restore_signals()
    elapsed = time.perf_counter() - start
    source = "restored from checkpoint in" if restored else ""
    print(
        f"{instance.name} on {args.subject} "
        f"({subject.statement_count()} stmts) via {engine.__name__}: "
        f"{source} {elapsed:.2f}s".replace(":  ", ": ")
    )
    rows = sorted(solver.relation(instance.primary), key=repr)
    shown = rows if args.limit is None else rows[: args.limit]
    for row in shown:
        print("  " + ", ".join(repr(v) for v in row))
    if args.limit is not None and len(rows) > args.limit:
        print(f"  ... ({len(rows) - args.limit} more)")
    print(f"{len(rows)} tuples in {instance.primary}")
    _emit_profile(args, metrics)
    return 0


def cmd_impact(args) -> int:
    """``impact``: the Section 3 methodology as a one-shot report."""
    _subject, instance = _build(args)
    changes = _changes_for(instance, args.changes, args.seed)
    records = measure_impacts(instance, changes)
    print(f"impact of {len(records)} changes on {instance.primary}:")
    print(format_histogram(bucket_impacts(records)))
    return 0


def cmd_bench(args) -> int:
    """``bench``: init + update-time distribution for one configuration."""
    _subject, instance = _build(args)
    engine = ENGINES[args.engine]
    changes = _changes_for(instance, args.changes, args.seed)
    metrics = _make_metrics(args)
    restore_signals = install_signal_handlers()
    try:
        run = run_update_benchmark(
            instance, engine, changes, metrics=metrics,
            setup=_solver_setup(args), guard=args.guard,
        )
    except ShutdownRequested as exc:
        return _interrupted(args, metrics, exc)
    finally:
        restore_signals()
    dist = Distribution.of(run.update_times())
    print(f"init: {run.init_seconds * 1e3:.1f} ms")
    print(
        format_table(
            DISTRIBUTION_HEADERS,
            [distribution_row(f"{args.analysis}@{args.subject}", dist.row())],
            title=f"update times (ms), {engine.__name__}",
        )
    )
    _emit_profile(args, metrics)
    return 0


def _write_explain_json(args, payload: dict) -> int:
    """Emit the ``--json`` artifact (schema: docs/explain_schema.json)."""
    if not args.json:
        return 0
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
        return 0
    try:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
    except OSError as exc:
        print(f"error: cannot write report: {exc}", file=sys.stderr)
        return 1
    print(f"report written to {args.json}")
    return 0


def _parse_cli_row(args) -> tuple | None:
    """``--row`` as a JSON array of scalars, or None when not given."""
    if args.row is None:
        return None
    try:
        row = json.loads(args.row)
    except ValueError as exc:
        raise SolverError(f"--row must be a JSON array: {exc}") from exc
    if not isinstance(row, list):
        raise SolverError(f"--row must be a JSON array, got {row!r}")
    return tuple(row)


def cmd_explain(args) -> int:
    """``explain``: derivations, why-not frontiers, rollback suggestions.

    Default mode prints one derivation of a selected result tuple, using
    the height-guided provenance fast path (docs/PROVENANCE.md).
    ``--whynot`` explains an *absent* tuple instead; ``--rollback`` adds
    verified input-edit suggestions that remove the selected tuple.
    """
    from .provenance import suggest_rollbacks, whynot
    from .service.snapshot import stable_repr

    _subject, instance = _build(args)
    try:
        solver = instance.make_solver(ENGINES[args.engine], provenance=True)
        row = _parse_cli_row(args)

        if args.whynot:
            if row is None:
                print("error: --whynot requires --row", file=sys.stderr)
                return 1
            report = whynot(solver, args.predicate or instance.primary, row)
            print(report.format())
            return _write_explain_json(args, {"whynot": report.to_dict()})

        pred = args.predicate or instance.primary
        rows = sorted(solver.relation(pred), key=stable_repr)
        if row is not None:
            rendered = [
                v if isinstance(v, str) else stable_repr(v) for v in row
            ]
            rows = [
                cand for cand in rows
                if cand == row
                or [stable_repr(v) for v in cand] == rendered
            ]
            if not rows:
                print(
                    f"{pred}{row} is not derived; try --whynot",
                    file=sys.stderr,
                )
                return 1
        if args.match:
            rows = [r for r in rows if args.match in repr(r)]
        if not rows:
            print(f"no tuples in {pred} matching {args.match!r}")
            return 1

        target = rows[0]
        derivation = explain(solver, pred, target, max_depth=args.depth)
        print(f"why {pred}{target}:")
        print(derivation.format(indent=1))
        if len(rows) > 1:
            print(f"({len(rows) - 1} more matching tuples; narrow with --match)")
        payload = {"explain": derivation.to_dict()}

        if args.rollback:
            suggestions = suggest_rollbacks(solver, pred, target)
            if suggestions:
                print("rollback suggestions:")
                for suggestion in suggestions:
                    print(f"  - {suggestion.format()}")
            else:
                print("no verified rollback suggestions "
                      "(no deletable input support)")
            payload["rollback"] = [s.to_dict() for s in suggestions]
        return _write_explain_json(args, payload)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_serve(args) -> int:
    """``serve``: the resident analysis service (docs/SERVICE.md).

    Default is JSON-lines over stdio; ``--port`` starts a TCP socket server
    instead (``--port 0`` binds an ephemeral port and prints it).  Both
    drain every session — including a batch mid-apply — before exiting, on
    end-of-input, a ``shutdown`` request, SIGINT, or SIGTERM.

    ``--workers N`` shards sessions across N supervised worker processes
    with crash recovery from periodic checkpoints (``--checkpoint-every``,
    spooled under ``--spool``); a termination signal is forwarded to the
    whole worker tree, which drains before the front end exits with the
    usual interrupt code 7.
    """
    from .service import (
        ClusterConfig,
        ClusterService,
        ServiceProtocol,
        ServiceServer,
        serve_stdio,
    )

    cluster = None
    if args.workers is not None:
        cluster = ClusterService(
            ClusterConfig(
                workers=args.workers,
                checkpoint_every=args.checkpoint_every,
                spool=args.spool,
            )
        )
        pids = " ".join(
            f"{slot}={pid}" for slot, pid in sorted(cluster.worker_pids().items())
        )
        print(f"repro serve cluster: {pids}", flush=True)
        protocol = cluster
    else:
        protocol = ServiceProtocol()
    def stop(signum, frame):
        # Forward the signal to the worker tree first: workers drain
        # their sessions on SIGTERM exactly like the front end does, so
        # one signal takes the whole process tree down gracefully.
        if cluster is not None:
            cluster.terminate_workers()
        raise ShutdownRequested(f"received signal {signum}")

    if args.port is not None:
        server = ServiceServer(args.host, args.port, protocol)
        print(f"repro serve listening on {server.host}:{server.port}",
              flush=True)

        restore_signals = install_signal_handlers(stop)
        try:
            # run() drains every session on its way out, exception or not.
            server.run()
        except ShutdownRequested as exc:
            print(f"interrupted: {exc}; sessions drained", file=sys.stderr)
            return EXIT_INTERRUPTED
        finally:
            restore_signals()
        return 0

    restore_signals = install_signal_handlers(stop)
    try:
        serve_stdio(protocol, sys.stdin, sys.stdout)
    except ShutdownRequested as exc:
        # serve_stdio already drained the sessions on its way out.
        print(f"interrupted: {exc}; sessions drained", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        restore_signals()
    return 0


def _load_registry_hook(spec: str):
    """Resolve a ``module:function`` spec to a callable taking a Program.

    The hook runs after parsing each ``.dl`` target and registers whatever
    the source needs — aggregators, Eval functions, Test predicates — since
    those live outside the textual syntax."""
    import importlib

    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(f"--registry expects module:function, got {spec!r}")
    module = importlib.import_module(module_name)
    hook = getattr(module, attr)
    if not callable(hook):
        raise ValueError(f"{spec} is not callable")
    return hook


def _check_one_target(target: str, args, subjects: dict):
    """Check one ``check`` target; returns ``(display_name, CheckResult)``.

    A target is either a bundled analysis name (checked against the default
    subject's program) or a path to a ``.dl`` source file."""
    from .datalog import Span, check_program, parse
    from .datalog.check import CheckResult, Diagnostic
    from .datalog.errors import ParseError

    deep = not args.fast
    if target in ANALYSES:
        subject = subjects.get(args.subject)
        if subject is None:
            subject = subjects[args.subject] = load_subject(args.subject)
        program = ANALYSES[target](subject).program
        return target, check_program(
            program, normalize_first=True, deep=deep, impact=args.impact
        )

    try:
        with open(target) as handle:
            source = handle.read()
    except OSError as exc:
        result = CheckResult()
        result.diagnostics.append(
            Diagnostic(
                code="DLC002",
                severity="error",
                message=f"cannot read {target}: {exc.strerror or exc}",
                span=Span(source=target),
                hint="pass a bundled analysis name or a .dl file path",
            )
        )
        return target, result
    try:
        program = parse(source, source_name=target)
    except ParseError as exc:
        result = CheckResult()
        result.diagnostics.append(
            Diagnostic(
                code="DLC001",
                severity="error",
                message=str(exc),
                span=Span(source=target),
                hint="fix the syntax error; later passes need a parse tree",
            )
        )
        return target, result
    if args.registry:
        _load_registry_hook(args.registry)(program)
    return target, check_program(
        program, normalize_first=True, deep=deep, impact=args.impact
    )


def cmd_check(args) -> int:
    """``check``: static diagnostics, human-readable or ``--json``.

    Exit code is the worst finding across all targets: 2 for errors, 1 for
    warnings only, 0 for a clean bill (info diagnostics never fail a run).
    """
    targets = list(args.targets)
    if args.all:
        targets = sorted(ANALYSES) + targets
    if not targets:
        print("error: no targets (pass analysis names, .dl paths, or --all)",
              file=sys.stderr)
        return 2

    try:
        subjects: dict = {}
        checked = [_check_one_target(t, args, subjects) for t in targets]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    worst = max(result.exit_code() for _, result in checked)
    if args.json:
        payload = {
            "version": 2,
            "exit_code": worst,
            "targets": [
                {"name": name, **result.to_dict()} for name, result in checked
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")
            print(f"report written to {args.json}")
        return worst

    from .datalog.check import Diagnostic

    for name, result in checked:
        counts = ", ".join(
            f"{sum(1 for d in result.diagnostics if d.severity == sev)} {sev}"
            for sev in ("error", "warning", "info")
        )
        dead = f", {len(result.dead_rules)} dead rules" if result.dead_rules else ""
        print(f"{name}: {counts}{dead} ({result.seconds * 1e3:.1f} ms)")
        for diag in sorted(result.diagnostics, key=Diagnostic.sort_key):
            print("  " + diag.format().replace("\n", "\n  "))
        if args.report and result.report:
            for entry in result.report:
                engines = ", ".join(
                    eng for eng, ok in entry["engines"].items() if ok
                )
                preds = ", ".join(entry["predicates"])
                print(f"  stratum {entry['component']} [{preds}]: {engines}"
                      + (f" — {entry['note']}" if entry["note"] else ""))
        if args.impact and result.impact:
            total = result.impact["strata_total"]
            for pred, entry in sorted(result.impact["edb"].items()):
                strata = entry["strata"]
                merges = entry["lattice_merges"]
                line = (
                    f"  impact {pred}: {len(entry['predicates'])} preds, "
                    f"{entry['rules']} rules, "
                    f"{len(strata)}/{total} strata"
                )
                if merges:
                    line += f", merges through {', '.join(merges)}"
                print(line)
            unreachable = result.impact["unreachable_rules"]
            if unreachable:
                print(f"  impact: {unreachable} delta-unreachable rule(s)")
    return worst


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Laddder reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("analysis", choices=sorted(ANALYSES))
        p.add_argument("subject", choices=sorted(PRESETS))
        p.add_argument("--scale", type=float, default=1.0,
                       help="corpus scale factor")
        p.add_argument("--seed", type=int, default=42)

    def profiled(p):
        p.add_argument("--profile", action="store_true",
                       help="print per-stratum/per-rule solver metrics")
        p.add_argument("--profile-json", metavar="FILE", default=None,
                       help="write solver metrics as JSON (use - for stdout)")

    def guarded(p):
        p.add_argument("--deadline", type=float, metavar="SECONDS",
                       default=None,
                       help="wall-clock budget per solve/update; exceeding "
                            "it raises instead of hanging (exit code 3)")
        p.add_argument("--self-check", action="store_true",
                       help="validate engine invariants between strata "
                            "(slow; exit code 4 on violation)")
        p.add_argument("--guard", action="store_true",
                       help="run updates transactionally with rollback and "
                            "from-scratch fallback on failure")

    analyze = sub.add_parser("analyze", help="run an analysis, print results")
    common(analyze)
    profiled(analyze)
    guarded(analyze)
    analyze.add_argument("--engine", choices=sorted(ENGINES), default="laddder")
    analyze.add_argument("--limit", type=int, default=20,
                         help="max tuples to print (use -1 for all)")
    analyze.add_argument("--checkpoint", metavar="FILE", default=None,
                         help="restore solver state from FILE if it exists, "
                              "else solve and save it there (exit code 5 on "
                              "a corrupt or mismatched file)")
    analyze.set_defaults(fn=cmd_analyze)

    impact = sub.add_parser("impact", help="Section 3 impact methodology")
    common(impact)
    impact.add_argument("--changes", type=int, default=20,
                        help="change pairs to synthesize")
    impact.set_defaults(fn=cmd_impact)

    bench = sub.add_parser("bench", help="one-shot update-time measurement")
    common(bench)
    profiled(bench)
    guarded(bench)
    bench.add_argument("--engine", choices=sorted(ENGINES), default="laddder")
    bench.add_argument("--changes", type=int, default=20)
    bench.set_defaults(fn=cmd_bench)

    explain_cmd = sub.add_parser(
        "explain", help="derivations, why-not frontiers, rollback hints"
    )
    common(explain_cmd)
    explain_cmd.add_argument("--engine", choices=sorted(ENGINES),
                             default="laddder")
    explain_cmd.add_argument("--predicate", default=None,
                             help="relation to explain (default: primary)")
    explain_cmd.add_argument("--match", default=None,
                             help="substring selecting the tuple")
    explain_cmd.add_argument("--row", metavar="JSON", default=None,
                             help="exact tuple as a JSON array of scalars")
    explain_cmd.add_argument("--depth", type=int, default=12,
                             help="max derivation depth")
    explain_cmd.add_argument("--whynot", action="store_true",
                             help="explain why --row is NOT derived")
    explain_cmd.add_argument("--rollback", action="store_true",
                             help="suggest verified input-fact deletions "
                                  "removing the selected tuple")
    explain_cmd.add_argument("--json", metavar="FILE", default=None,
                             help="write the report as JSON (docs/"
                                  "explain_schema.json; use - for stdout)")
    explain_cmd.set_defaults(fn=cmd_explain)

    check_cmd = sub.add_parser(
        "check", help="static diagnostics for analyses and .dl files"
    )
    check_cmd.add_argument("targets", nargs="*",
                           help="bundled analysis names and/or .dl file paths")
    check_cmd.add_argument("--all", action="store_true",
                           help="check every bundled analysis")
    check_cmd.add_argument("--subject", choices=sorted(PRESETS),
                           default="minijavac",
                           help="subject used to instantiate analysis targets")
    check_cmd.add_argument("--json", metavar="FILE", default=None,
                           help="write the JSON report (docs/check_schema."
                                "json; use - for stdout)")
    check_cmd.add_argument("--fast", action="store_true",
                           help="skip the sampled aggregator-law checks")
    check_cmd.add_argument("--impact", action="store_true",
                           help="attach the per-EDB-predicate change-impact "
                                "report (affected predicates/rules/strata)")
    check_cmd.add_argument("--report", action="store_true",
                           help="print the per-stratum incrementalizability "
                                "report")
    check_cmd.add_argument("--registry", metavar="MOD:FN", default=None,
                           help="import hook(program) registering aggregators"
                                "/functions for parsed .dl targets")
    check_cmd.set_defaults(fn=cmd_check)

    serve_cmd = sub.add_parser(
        "serve", help="resident analysis service (JSON-lines protocol)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="TCP bind address (with --port)")
    serve_cmd.add_argument("--port", type=int, default=None,
                           help="serve a TCP socket instead of stdio "
                                "(0 binds an ephemeral port and prints it)")
    serve_cmd.add_argument("--workers", type=int, default=None,
                           help="shard sessions across N supervised worker "
                                "processes with crash recovery")
    serve_cmd.add_argument("--checkpoint-every", type=int, default=16,
                           help="checkpoint each session every K applied "
                                "batches (cluster mode; default 16)")
    serve_cmd.add_argument("--spool", default=None,
                           help="checkpoint spool directory (cluster mode; "
                                "default: a fresh temp directory)")
    serve_cmd.set_defaults(fn=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Typed solver failures map to distinct nonzero exit codes with a
    one-line message on stderr (see ``EXIT_CODES``; docs/ROBUSTNESS.md):
    watchdog trip 3, invariant violation 4, checkpoint failure 5, rolled-
    back update 6, graceful signal-driven shutdown 7, unrecovered worker
    crash 8, retry exhaustion 9, any other Datalog/solver error 2.
    """
    args = make_parser().parse_args(argv)
    if getattr(args, "limit", None) == -1:
        args.limit = None
    try:
        return args.fn(args)
    except DatalogError as exc:
        code = 2
        for err_cls, err_code in EXIT_CODES.items():
            if isinstance(exc, err_cls):
                code = err_code
                break
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
