"""Rule grounding: enumerate variable bindings satisfying a planned body.

The planner (:mod:`repro.datalog.planning`) orders body items so that by the
time an ``Eval``, ``Test``, or negated literal runs, its inputs are bound.
:func:`run_plan` walks that order, consulting a caller-supplied
``lookup(pred) -> IndexedRelation`` for relational atoms, and yields complete
bindings.  :func:`instantiate` turns head terms into concrete tuples.

Bindings are plain dicts from variable name to value — small and cheap to
copy at the leaf only (we mutate one dict along the search path and undo on
backtrack to avoid quadratic copying).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from ..datalog.ast import (
    Atom,
    BodyItem,
    Constant,
    Eval,
    Head,
    Literal,
    Term,
    Test,
    Variable,
)
from ..datalog.errors import SolverError
from ..datalog.program import Program
from .relation import IndexedRelation

Lookup = Callable[[str], IndexedRelation]
Binding = dict[str, object]


def pattern_for(atom: Atom, binding: Binding) -> tuple:
    """Build a matching pattern: bound values in place, None for free."""
    out = []
    for term in atom.args:
        if isinstance(term, Constant):
            out.append(term.value)
        else:
            out.append(binding.get(term.name))
    return tuple(out)


def unify_tuple(atom: Atom, row: tuple, binding: Binding) -> list[str] | None:
    """Extend ``binding`` so ``atom`` matches ``row``.

    Returns the list of newly bound variable names (for undo), or ``None``
    if the row conflicts with existing bindings/constants (only possible for
    repeated variables — indexed lookups already filtered bound positions).
    """
    added: list[str] = []
    for term, value in zip(atom.args, row):
        if isinstance(term, Constant):
            if term.value != value:
                _undo(binding, added)
                return None
        else:
            existing = binding.get(term.name, _MISSING)
            if existing is _MISSING:
                binding[term.name] = value
                added.append(term.name)
            elif existing != value:
                _undo(binding, added)
                return None
    return added


_MISSING = object()


def _undo(binding: Binding, added: list[str]) -> None:
    for name in added:
        del binding[name]


def term_value(term: Term, binding: Binding) -> object:
    if isinstance(term, Constant):
        return term.value
    try:
        return binding[term.name]
    except KeyError:
        raise SolverError(f"unbound variable {term.name} at evaluation time") from None


def run_plan(
    plan: list[BodyItem],
    program: Program,
    lookup: Lookup,
    binding: Binding,
    start: int = 0,
    neg_skip: tuple[str, tuple] | None = None,
) -> Iterator[Binding]:
    """Yield every binding satisfying ``plan[start:]``, extending ``binding``.

    The yielded dict is the live search binding — callers must consume the
    values they need (e.g. instantiate the head) before advancing the
    iterator.

    ``neg_skip`` names one ``(pred, row)`` whose negation check is waived:
    incremental engines enumerating the consequences of that row's own
    presence change need the superset of substitutions live in either the
    old or the new world.
    """
    if start >= len(plan):
        yield binding
        return
    item = plan[start]
    if isinstance(item, Literal):
        if item.negated:
            pattern = pattern_for(item.atom, binding)
            if None in pattern:
                raise SolverError(f"negated atom {item!r} not fully bound")
            row = tuple(pattern)
            waived = neg_skip is not None and neg_skip == (item.pred, row)
            if waived or row not in lookup(item.pred):
                yield from run_plan(
                    plan, program, lookup, binding, start + 1, neg_skip
                )
            return
        relation = lookup(item.pred)
        pattern = pattern_for(item.atom, binding)
        # matching() returns a snapshot (see ColumnIndexed.matching), so the
        # relation may be mutated by consumers while we enumerate.
        for row in relation.matching(pattern):
            added = unify_tuple(item.atom, row, binding)
            if added is None:
                continue
            yield from run_plan(plan, program, lookup, binding, start + 1, neg_skip)
            _undo(binding, added)
        return
    if isinstance(item, Eval):
        fn = program.functions[item.fn]
        args = [term_value(a, binding) for a in item.args]
        value = fn(*args)
        existing = binding.get(item.var.name, _MISSING)
        if existing is _MISSING:
            binding[item.var.name] = value
            yield from run_plan(plan, program, lookup, binding, start + 1, neg_skip)
            del binding[item.var.name]
        elif existing == value:
            yield from run_plan(plan, program, lookup, binding, start + 1, neg_skip)
        return
    if isinstance(item, Test):
        fn = program.tests[item.fn]
        args = [term_value(a, binding) for a in item.args]
        if fn(*args):
            yield from run_plan(plan, program, lookup, binding, start + 1, neg_skip)
        return
    raise TypeError(f"unknown body item {item!r}")


def bind_pinned(literal: Literal, row: tuple) -> Binding | None:
    """Bind a delta row against the pinned occurrence; None on mismatch."""
    binding: Binding = {}
    if unify_tuple(literal.atom, row, binding) is None:
        return None
    return binding


def instantiate(head: Head, binding: Mapping[str, object]) -> tuple:
    """Ground a non-aggregation head under a complete binding."""
    out = []
    for term in head.args:
        if isinstance(term, Constant):
            out.append(term.value)
        elif isinstance(term, Variable):
            out.append(binding[term.name])
        else:  # AggTerm — aggregation heads are instantiated by the engine
            raise SolverError(f"cannot directly instantiate aggregation head {head!r}")
    return tuple(out)
