"""Shared pre-planning pass: check, prune, and build the impact index.

Before PR 9 every engine constructor duplicated the same sequence inline —
run :func:`repro.datalog.check.check_program`, raise on the first error,
drop the dead-rule slice unless ``REPRO_NO_PRUNE`` is set, re-stratify.
:func:`prepare` is that sequence as a single pass, extended with the static
change-impact index (:mod:`repro.datalog.impact`) so pruning and
impact-guided scheduling consume one consistent view of the program:
the impact index is always built *after* pruning, against the exact rule
list and component order the engine will evaluate.

``REPRO_NO_IMPACT=1`` (docs/PERFORMANCE.md) skips the index; engines then
fall back to visiting every stratum per update, bit-equal by construction.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..datalog.check import CheckResult, check_program
from ..datalog.impact import ImpactIndex
from ..datalog.program import Program
from ..datalog.stratify import Component, stratify
from ..datalog.validate import raise_on_error


@dataclass
class PreparedProgram:
    """What :func:`prepare` learned; consumed by ``Solver.__init__``."""

    #: The working program, dead-rule-pruned in place unless opted out.
    program: Program
    checked: CheckResult
    #: Dependency components of the (pruned) program, bottom-up.
    components: list[Component]
    #: Static change-impact index, or None under ``REPRO_NO_IMPACT=1``.
    impact: ImpactIndex | None
    dead_rules_pruned: int
    check_seconds: float
    impact_seconds: float


def prepare(program: Program) -> PreparedProgram:
    """Run static checks on ``program`` (already normalized), prune dead
    rules in place, and build the impact index over the result.

    Raises the first error-severity diagnostic as a ``ValidationError``
    (the legacy ``validate()`` contract).  Exported views are unaffected by
    pruning either way — dead rules cannot reach an export by definition.
    """
    t0 = time.perf_counter()
    checked = check_program(program)
    raise_on_error(checked)
    components: list[Component] = checked.components or []
    pruned = 0
    if checked.dead_rules and not os.environ.get("REPRO_NO_PRUNE"):
        program.rules = list(checked.live_rules)
        components = stratify(program)
        pruned = len(checked.dead_rules)
    check_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    impact = None
    if not os.environ.get("REPRO_NO_IMPACT"):
        impact = ImpactIndex(program, components)
    impact_seconds = time.perf_counter() - t1

    return PreparedProgram(
        program=program,
        checked=checked,
        components=components,
        impact=impact,
        dead_rules_pruned=pruned,
        check_seconds=check_seconds,
        impact_seconds=impact_seconds,
    )


__all__ = ["PreparedProgram", "prepare"]
