"""Constant interning: dense integer handles for every constant a solver touches.

The columnar backend (``REPRO_BACKEND=columnar``, see
:mod:`repro.engines.relation`) stores relation rows as tuples of dense
non-negative ints instead of raw Python values.  The mapping lives in a
per-solver :class:`InternTable`; everything *inside* the engine — joins,
timelines, aggregation groups, compiled kernels — then operates purely on
int tuples, and values are externalized only at the public boundaries
(``relation()``, ``facts()``, update stats, traces, explanations).

The trick that keeps the four engines untouched is *conjugation*: instead
of teaching the interpreter and kernels about the table, the solver's
private program copy is rewritten once at construction time
(:func:`intern_program`):

* every ``Constant(value)`` in a rule becomes ``Constant(intern(value))``,
* registered functions become ``intern ∘ f ∘ extern`` (args are handles,
  the result is a handle),
* registered tests become ``f ∘ extern`` (args are handles, result a bool),
* registered aggregators are wrapped in :class:`InternedAggregator`, whose
  ``combine``/``final``/``dominates`` conjugate through the table.

With that rewrite in place the whole grounding/compilation machinery is
already id-correct: patterns, unification, negation probes, aggregation
folds and budget keys all compare handles to handles.

Identity semantics
------------------

Handles are assigned by *type-aware* equality: the table key is
``(value.__class__, value)``, so ``1``, ``1.0`` and ``True`` — equal and
hash-equal in Python — receive distinct handles and externalize back to
exactly the object kind that was interned.  ``extern(intern(x)) == x`` and
``type(extern(intern(x))) is type(x)`` therefore hold for every hashable
``x`` (the property suite in ``tests/property/test_intern_roundtrip.py``
pins this down over all constant kinds the bundled analyses use).

Handle assignment is deterministic: first-touch order.  Two solvers built
from the same program that receive the same fact stream assign identical
handles, which is what lets checkpoints store the table as a plain value
list and restore it into a freshly constructed solver
(:meth:`InternTable.restore` verifies the program-constant prefix).
"""

from __future__ import annotations

import hashlib
import sys
from typing import TYPE_CHECKING, Callable, Iterable

from ..datalog.ast import Constant, Eval, Head, Literal, Atom, Rule, Test
from ..datalog.program import Program
from ..datalog.stratify import Component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..lattices import Aggregator
    from ..metrics import SolverMetrics


def program_hash(program: Program) -> str:
    """Stable fingerprint of a program's rules (order-sensitive).

    Solvers capture this *before* interning rewrites their private copy, so
    the hash is backend-independent and checkpoints written under one
    backend still name the same source program as any other.
    """
    text = "\n".join(repr(rule) for rule in program.rules)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class InternTable:
    """A bijection between constants and dense non-negative ints.

    ``values[handle]`` is the externalization; ``_ids[(type, value)]`` the
    internalization.  Handles are list indices, so extern is an O(1) index
    and the table serializes as the plain ``values`` list.
    """

    __slots__ = ("_ids", "values", "metrics")

    def __init__(self, metrics: "SolverMetrics | None" = None):
        self._ids: dict[tuple, int] = {}
        self.values: list = []
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value) -> int:
        """The handle for ``value``, assigning a fresh one on first touch."""
        key = (value.__class__, value)
        handle = self._ids.get(key)
        if handle is None:
            handle = len(self.values)
            self._ids[key] = handle
            self.values.append(value)
            if self.metrics is not None:
                self.metrics.interned_constants += 1
        return handle

    def extern(self, handle: int):
        """The value behind ``handle``."""
        return self.values[handle]

    def lookup_row(self, row: tuple) -> tuple | None:
        """Handle tuple for ``row`` without assigning new handles.

        Read-only queries (timelines, explanations) must not grow the
        table — a probe for a never-seen constant simply cannot match any
        stored tuple, so ``None`` is returned instead.
        """
        ids = self._ids
        out = []
        for value in row:
            handle = ids.get((value.__class__, value))
            if handle is None:
                return None
            out.append(handle)
        return tuple(out)

    def intern_row(self, row: tuple) -> tuple:
        intern = self.intern
        return tuple(intern(v) for v in row)

    def extern_row(self, row: tuple) -> tuple:
        values = self.values
        return tuple(values[i] for i in row)

    def table_bytes(self) -> int:
        """Approximate heap bytes of the table: both containers plus the
        canonical constant copies (each distinct constant counted once —
        the rows referencing it hold handles, not pointers to it)."""
        total = sys.getsizeof(self._ids) + sys.getsizeof(self.values)
        for value in self.values:
            total += sys.getsizeof(value)
        return total

    def dump(self) -> list:
        """The serializable state: the value list in handle order."""
        return list(self.values)

    def restore(self, values: Iterable) -> None:
        """Adopt a dumped value list into this (freshly built) table.

        The live table already holds the program's own constants — interned
        deterministically at construction — which must form a prefix of the
        dump (same program, same first-touch order).  The prefix is verified
        and the remainder re-interned in dump order, reproducing the saved
        handle assignment exactly.
        """
        values = list(values)
        mine = self.values
        if len(mine) > len(values):
            raise ValueError(
                f"intern table dump has {len(values)} values but the live "
                f"program already interned {len(mine)}"
            )
        for i, value in enumerate(mine):
            saved = values[i]
            if saved.__class__ is not value.__class__ or saved != value:
                raise ValueError(
                    f"intern table mismatch at handle {i}: "
                    f"saved {saved!r}, live {value!r}"
                )
        for value in values[len(mine):]:
            self.intern(value)
        if len(self.values) != len(values):  # duplicate in the dump tail
            raise ValueError("intern table dump contains duplicate values")


class InternedAggregator:
    """An :class:`~repro.lattices.Aggregator` conjugated through a table.

    Mirrors the full aggregator interface (``combine``/``combine_all``/
    ``dominates``/``strictly_advances``/``final`` plus the ``name``/
    ``lattice``/``direction`` attributes) so engines and specs cannot tell
    the difference; aggregands and results are handles.

    ``combine`` is memoized on the handle pair: aggregator laws require it
    to be a pure function of its two values, and handles are stable for the
    solver's lifetime, so each distinct lattice-join pair is computed (and
    conjugated through the table) exactly once.  The memo is bounded by the
    number of distinct value pairs the analysis ever joins — for the bundled
    lattices a few hundred entries even across long soaks.
    """

    __slots__ = ("base", "table", "_memo")

    def __init__(self, base: "Aggregator", table: InternTable):
        self.base = base
        self.table = table
        self._memo: dict[int, int] = {}

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def lattice(self):
        return self.base.lattice

    @property
    def direction(self) -> str:
        return self.base.direction

    def combine(self, a: int, b: int) -> int:
        # Handles are dense list indices far below 2**32, so the pair packs
        # into one int key (same layout as the packed index keys).
        key = (a << 32) | b
        out = self._memo.get(key)
        if out is None:
            table = self.table
            values = table.values
            out = table.intern(self.base.combine(values[a], values[b]))
            self._memo[key] = out
        return out

    def combine_all(self, handles: Iterable[int]) -> int:
        table = self.table
        values = table.values
        return table.intern(self.base.combine_all(values[h] for h in handles))

    def dominates(self, result: int, aggregand: int) -> bool:
        values = self.table.values
        return self.base.dominates(values[result], values[aggregand])

    def strictly_advances(self, old: int, new: int) -> bool:
        values = self.table.values
        return self.base.strictly_advances(values[old], values[new])

    def final(self, handles: Iterable[int]) -> int:
        table = self.table
        values = table.values
        return table.intern(self.base.final(values[h] for h in handles))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InternedAggregator {self.base!r}>"


def _interned_function(fn: Callable, table: InternTable) -> Callable:
    def conjugated(*handles):
        values = table.values
        return table.intern(fn(*[values[h] for h in handles]))

    conjugated.__name__ = getattr(fn, "__name__", "function")
    return conjugated


def _interned_test(fn: Callable, table: InternTable) -> Callable:
    def conjugated(*handles):
        values = table.values
        return fn(*[values[h] for h in handles])

    conjugated.__name__ = getattr(fn, "__name__", "test")
    return conjugated


def _intern_term(term, table: InternTable):
    if isinstance(term, Constant):
        return Constant(table.intern(term.value))
    return term  # Variables and AggTerms carry no constants


def _intern_rule(rule: Rule, table: InternTable) -> Rule:
    """Rebuild ``rule`` with every Constant replaced by its handle.

    Returns the original object when the rule mentions no constants, so
    identity-keyed caches (kernels, shapes) stay warm for the common case.
    """
    changed = False
    head_args = []
    for term in rule.head.args:
        new = _intern_term(term, table)
        changed = changed or new is not term
        head_args.append(new)
    body = []
    for item in rule.body:
        if isinstance(item, Literal):
            args = [_intern_term(t, table) for t in item.atom.args]
            if any(n is not o for n, o in zip(args, item.atom.args)):
                changed = True
                item = Literal(
                    Atom(item.atom.pred, tuple(args), item.atom.span),
                    item.negated,
                )
        elif isinstance(item, Eval):
            args = [_intern_term(t, table) for t in item.args]
            if any(n is not o for n, o in zip(args, item.args)):
                changed = True
                item = Eval(item.var, item.fn, tuple(args), item.span)
        elif isinstance(item, Test):
            args = [_intern_term(t, table) for t in item.args]
            if any(n is not o for n, o in zip(args, item.args)):
                changed = True
                item = Test(item.fn, tuple(args), item.span)
        body.append(item)
    if not changed:
        return rule
    head = Head(rule.head.pred, tuple(head_args), rule.head.span)
    return Rule(head, tuple(body), rule.span)


def intern_program(
    program: Program, components: Iterable[Component], table: InternTable
) -> None:
    """Rewrite a solver's private program copy into handle space, in place.

    Rules containing constants are rebuilt (spans preserved) and the new
    objects substituted both in ``program.rules`` and in every component's
    rule list — engines key kernel caches by rule identity, so both views
    must agree on the one rewritten object.  Registries are conjugated
    through ``table`` as described in the module docstring.
    """
    remap: dict[int, Rule] = {}
    rules = []
    for rule in program.rules:
        new = _intern_rule(rule, table)
        if new is not rule:
            remap[id(rule)] = new
        rules.append(new)
    program.rules = rules
    if remap:
        for component in components:
            component.rules = [remap.get(id(r), r) for r in component.rules]
    program.functions = {
        name: _interned_function(fn, table)
        for name, fn in program.functions.items()
    }
    program.tests = {
        name: _interned_test(fn, table) for name, fn in program.tests.items()
    }
    program.aggregators = {
        name: InternedAggregator(agg, table)
        for name, agg in program.aggregators.items()
    }


__all__ = [
    "InternTable",
    "InternedAggregator",
    "intern_program",
    "program_hash",
]
