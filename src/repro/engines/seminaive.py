"""Semi-naive bottom-up solver — the non-incremental performance baseline.

Section 4.1: *"Laddder follows a semi-naïve evaluation strategy: in each
iteration of the fixpoint computation, Laddder only considers new tuples
from the previous iteration instead of re-applying rules on the whole set of
tuples computed thus far."*  This engine is that strategy *without* the
incremental timeline machinery: per component it seeds from upstream, then
propagates per-round deltas through delta-pinned join plans, maintaining
running aggregation totals per group (inflationary — totals only advance
during an initial run, so a single running value per group suffices).

It computes the same ``D_raw``/``D_prune``/``D_exp`` as
:class:`repro.engines.naive.NaiveSolver` and stands in for Soufflé as the
from-scratch engine in the impact methodology (Section 3) and for DRedL's
initialization phase (Section 7.3: "its from-scratch initialization phase is
essentially a standard bottom-up Datalog fixpoint evaluation").
"""

from __future__ import annotations

from time import perf_counter

from ..datalog.planning import delta_occurrences
from ..datalog.program import Program
from ..datalog.stratify import Component
from ..metrics import SolverMetrics
from ..robustness import faults as _faults
from .aggspec import AggSpec, compile_agg_specs, prune_aggregated
from .base import FactChanges, Solver, UpdateStats
from .relation import IndexedRelation, RelationStore


class _ResolvedRelations(dict):
    """``pred -> relation`` cache dispatching misses to the right store.

    Kernels resolve their relations on every call; the bound
    ``__getitem__`` of this dict is what they receive as ``lookup``, so the
    hit path is one C-level dict lookup and only the first touch of a
    predicate per component visit pays the store dispatch.
    """

    __slots__ = ("local", "exported", "predicates")

    def __init__(
        self, local: RelationStore, exported: RelationStore, predicates
    ):
        super().__init__()
        self.local = local
        self.exported = exported
        self.predicates = predicates

    def __missing__(self, pred: str) -> IndexedRelation:
        store = self.local if pred in self.predicates else self.exported
        relation = self[pred] = store.get(pred)
        return relation


class SemiNaiveSolver(Solver):
    """Delta-driven from-scratch evaluation with running aggregation totals."""

    def __init__(
        self,
        program: Program,
        metrics: SolverMetrics | None = None,
        provenance: bool | None = None,
    ):
        super().__init__(program, metrics=metrics, provenance=provenance)
        self._exported = RelationStore(self.arities, backend=self.backend)
        self._raw = RelationStore(self.arities, backend=self.backend)
        #: aggregated pred -> group key -> running total (valid per solve()).
        self._totals: dict[str, dict[tuple, object]] = {}

    # -- public API ----------------------------------------------------------

    def solve(self) -> None:
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        self.budget.begin()
        self._exported = RelationStore(
            self.arities, metrics=self._store_metrics(), backend=self.backend
        )
        self._raw = RelationStore(self.arities, backend=self.backend)
        self._totals = {}
        if self.provenance is not None:
            self.provenance.clear_all()
        for pred, rows in self._fact_items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for index, component in enumerate(self.components):
            self._solve_component(component, index)
            self._run_self_check(index)
        self._solved = True
        if active:
            self.metrics.solve_seconds += perf_counter() - started

    def update(
        self,
        insertions: FactChanges | None = None,
        deletions: FactChanges | None = None,
    ) -> UpdateStats:
        self._require_solved()
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        before = {
            pred: self.relation(pred) for pred in self.program.exported_predicates()
        }
        ins, dels = self._normalize_changes(insertions, deletions)
        footprint = self._impact_footprint(ins, dels)
        if footprint is None:
            self.solve()
        else:
            self._partial_solve(ins, dels, footprint)
        after = {
            pred: self.relation(pred) for pred in self.program.exported_predicates()
        }
        if active:
            self.metrics.update_seconds += perf_counter() - started
        return self._exported_diff(before, after)

    def _partial_solve(self, ins, dels, footprint) -> None:
        """Re-solve only the strata inside the batch's static footprint.

        The EDB diff is applied to the retained exported store in place and
        each affected component is re-solved from scratch against current
        upstream state; components outside the footprint receive no upstream
        change by construction (footprints are component-closed), so their
        retained fixpoint is exactly what a full solve() would recompute.
        """
        self.budget.begin()
        for pred, rows in ins.items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for pred, rows in dels.items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.discard(row)
        for index, component in enumerate(self.components):
            if index not in footprint.strata:
                self.metrics.strata_skipped += 1
                continue
            # Forget the component's previous fixpoint — raw accretions and
            # running totals are only valid for the inputs they were
            # computed from — then recompute it against current upstream.
            for pred in component.predicates:
                self._raw.get(pred).clear()
                self._totals.pop(pred, None)
            if self.provenance is not None:
                self.provenance.clear_preds(component.predicates)
            self._solve_component(component, index)
            self._run_self_check(index)

    def relation(self, pred: str) -> frozenset[tuple]:
        self._require_solved()
        return self._export_rows(self._exported.get(pred).tuples)

    def raw_relation(self, pred: str) -> frozenset[tuple]:
        self._require_solved()
        if pred in self.edb:
            return self._export_rows(self._exported.get(pred).tuples)
        return self._export_rows(self._raw.get(pred).tuples)

    def state_size(self) -> int:
        totals = sum(len(g) for g in self._totals.values())
        return self._exported.state_size() + self._raw.state_size() + totals

    # -- component evaluation --------------------------------------------

    def _solve_component(self, component: Component, index: int) -> None:
        metrics = self.metrics
        stratum = (
            metrics.stratum(index, component.predicates) if metrics.active else None
        )
        started = perf_counter() if stratum is not None else 0.0
        local = RelationStore(
            self.arities, metrics=self._store_metrics(), backend=self.backend
        )
        specs = compile_agg_specs(component.rules, self.program)
        plain_rules = [r for r in component.rules if not r.is_aggregation]
        if self.impact is not None:
            # Rules joining a forever-empty relation enumerate nothing;
            # don't compile (or fire) their kernels at all.
            plain_rules = [r for r in plain_rules if self.impact.rule_viable(r)]

        # Relation resolution is on every kernel's path, several probes per
        # call; once resolved, the relation object is stable for the rest of
        # this component visit, so cache the store dispatch away.
        resolved = _ResolvedRelations(local, self._exported, component.predicates)
        lookup = resolved.__getitem__

        def oracle(pred: str) -> int:
            return len(resolved[pred])

        # Resolve kernels once per component visit (plans are cached across
        # visits; refresh re-plans only on large cardinality shifts).
        self.kernels.refresh(component.rules, oracle)
        full_kernels = [
            (rule, self.kernels.kernel(rule, oracle=oracle).fn)
            for rule in plain_rules
        ]
        # Delta kernels pinned on component-local positive occurrences,
        # grouped by the pinned predicate.
        pinned: dict[str, list[tuple]] = {}
        for rule in plain_rules:
            for i, literal in delta_occurrences(rule):
                if literal.pred in component.predicates:
                    pinned.setdefault(literal.pred, []).append(
                        (rule, self.kernels.kernel(rule, pinned=i, oracle=oracle).fn)
                    )
        seed_agg_kernels = {
            spec.pred: self.kernels.kernel(
                spec.rule, emit="keyvalue", oracle=oracle, spec=spec
            ).fn
            for spec in specs.values()
            if spec.collecting_pred not in component.predicates
        }

        delta: dict[str, set[tuple]] = {}
        #: [derived, deduplicated] — kept unconditionally (two cheap list
        #: increments); folded into ``metrics`` only when collection is on.
        counts = [0, 0]

        prov = self.provenance

        def derive(pred: str, row: tuple, next_delta: dict, rule=None) -> None:
            if lookup(pred).add(row):
                next_delta.setdefault(pred, set()).add(row)
                counts[0] += 1
                if prov is not None:
                    prov.annotate(pred, row, rule)
            else:
                counts[1] += 1

        def fold_rule(rule, t0: float, before: tuple[int, int]) -> None:
            metrics.rule_fired(
                repr(rule),
                counts[0] - before[0],
                counts[1] - before[1],
                perf_counter() - t0,
                stratum,
            )

        # Seed round: full evaluation (local relations are empty, so this
        # only fires rules satisfiable from upstream alone).
        for rule, kernel in full_kernels:
            if _faults.ACTIVE is not None:
                _faults.fire("kernel.emit")
            t0, before = (perf_counter(), tuple(counts)) if stratum else (0.0, (0, 0))
            for head_row in kernel(lookup):
                derive(rule.head.pred, head_row, delta, rule)
            if stratum is not None:
                fold_rule(rule, t0, before)
        for spec in specs.values():
            if spec.collecting_pred not in component.predicates:
                before_agg = counts[0]
                self._seed_upstream_aggregation(
                    spec, seed_agg_kernels[spec.pred], lookup, derive, delta
                )
                if stratum is not None:
                    metrics.derivations(stratum, counts[0] - before_agg)
        if stratum is not None:
            metrics.round_delta(stratum, sum(len(rows) for rows in delta.values()))

        max_iterations = self.budget.iterations(self.MAX_ITERATIONS)
        for _ in range(max_iterations):
            if not delta:
                break
            self._poll_budget(f"semi-naive fixpoint, component {index}")
            next_delta: dict[str, set[tuple]] = {}
            for pred, rows in delta.items():
                for rule, kernel in pinned.get(pred, ()):
                    if _faults.ACTIVE is not None:
                        _faults.fire("kernel.emit")
                    t0, before = (
                        (perf_counter(), tuple(counts)) if stratum else (0.0, (0, 0))
                    )
                    head_pred = rule.head.pred
                    for row in rows:
                        for head_row in kernel(lookup, row):
                            derive(head_pred, head_row, next_delta, rule)
                    if stratum is not None:
                        fold_rule(rule, t0, before)
                for spec in specs.values():
                    if spec.collecting_pred == pred:
                        before_agg = counts[0]
                        self._advance_aggregation(spec, rows, derive, next_delta)
                        if stratum is not None:
                            metrics.derivations(stratum, counts[0] - before_agg)
            if stratum is not None:
                metrics.round_delta(
                    stratum, sum(len(rows) for rows in next_delta.values())
                )
            delta = next_delta
        else:
            raise self._budget_exceeded(
                f"component {sorted(component.predicates)} exceeded "
                f"{max_iterations} rounds of iterations — diverging analysis?"
            )

        self._export_component(component, local, specs)
        if stratum is not None:
            metrics.stratum_end(stratum, perf_counter() - started)

    def _seed_upstream_aggregation(self, spec, kernel, lookup, derive, delta) -> None:
        """Aggregate a collecting relation that lives upstream: its content
        is static during this component, so a single full pass suffices."""
        if _faults.ACTIVE is not None:
            _faults.fire("aggregate.combine")
        totals = self._totals.setdefault(spec.pred, {})
        combine = spec.aggregator.combine
        for key, value in kernel(lookup):
            if key in totals:
                totals[key] = combine(totals[key], value)
            else:
                totals[key] = value
        for key, total in totals.items():
            derive(spec.pred, spec.tuple_for(key, total), delta, spec.rule)

    def _advance_aggregation(self, spec, collect_rows, derive, next_delta) -> None:
        """Fold newly collected aggregands into running group totals; emit a
        new inflationary total tuple when a group's total advances."""
        if _faults.ACTIVE is not None:
            _faults.fire("aggregate.combine")
        totals = self._totals.setdefault(spec.pred, {})
        combine = spec.aggregator.combine
        extract = self.kernels.extractor(spec)
        touched: set[tuple] = set()
        for row in collect_rows:
            split = extract(row)
            if split is None:
                continue
            key, value = split
            if key in totals:
                new_total = combine(totals[key], value)
            else:
                new_total = value
            if key not in totals or new_total != totals[key]:
                totals[key] = new_total
                touched.add(key)
                self._chain_advance(spec.pred, key)
        for key in touched:
            derive(spec.pred, spec.tuple_for(key, totals[key]), next_delta, spec.rule)

    def _export_component(
        self, component: Component, local: RelationStore, specs: dict[str, AggSpec]
    ) -> None:
        for pred in component.predicates:
            raw = self._raw.get(pred)
            for row in local.get(pred).tuples:
                raw.add(row)
            exported = self._exported.get(pred)
            exported.clear()
            if pred in specs:
                rows = prune_aggregated(local.get(pred).tuples, specs[pred])
            else:
                rows = local.get(pred).tuples
            for row in rows:
                exported.add(row)
