"""The naive reference solver — the executable semantics of Section 6.3.

Per dependency component, iterate the *inflationary consequence operator*
``T̂`` on full relations until fixpoint (``D_raw = T̂ω``), then prune
aggregated predicates to their final aggregate per group (``D_prune``) and
export (``D_exp``).  No deltas, no timestamps: this engine is deliberately
simple and serves as the correctness oracle for every other engine.

``update`` re-solves from scratch (the Soufflé-style non-incremental
behaviour the paper contrasts with) and reports the exported diff — exactly
what the impact methodology of Section 3 measures.
"""

from __future__ import annotations

from time import perf_counter

from ..datalog.program import Program
from ..datalog.stratify import Component
from ..metrics import SolverMetrics
from ..robustness import faults as _faults
from .aggspec import AggSpec, compile_agg_specs, prune_aggregated
from .base import FactChanges, Solver, UpdateStats
from .relation import IndexedRelation, RelationStore


class NaiveSolver(Solver):
    """Iterate ``T̂`` to fixpoint on full relations; prune; export."""

    def __init__(
        self,
        program: Program,
        metrics: SolverMetrics | None = None,
        provenance: bool | None = None,
    ):
        super().__init__(program, metrics=metrics, provenance=provenance)
        self._exported = RelationStore(self.arities, backend=self.backend)
        self._raw = RelationStore(self.arities, backend=self.backend)

    # -- public API ----------------------------------------------------------

    def solve(self) -> None:
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        self.budget.begin()
        self._exported = RelationStore(
            self.arities, metrics=self._store_metrics(), backend=self.backend
        )
        self._raw = RelationStore(self.arities, backend=self.backend)
        if self.provenance is not None:
            self.provenance.clear_all()
        for pred, rows in self._fact_items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for index, component in enumerate(self.components):
            self._solve_component(component, index)
            self._run_self_check(index)
        self._solved = True
        if active:
            self.metrics.solve_seconds += perf_counter() - started

    def update(
        self,
        insertions: FactChanges | None = None,
        deletions: FactChanges | None = None,
    ) -> UpdateStats:
        self._require_solved()
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        before = {
            pred: self.relation(pred) for pred in self.program.exported_predicates()
        }
        ins, dels = self._normalize_changes(insertions, deletions)
        footprint = self._impact_footprint(ins, dels)
        if footprint is None:
            self.solve()
        else:
            self._partial_solve(ins, dels, footprint)
        after = {
            pred: self.relation(pred) for pred in self.program.exported_predicates()
        }
        if active:
            self.metrics.update_seconds += perf_counter() - started
        return self._exported_diff(before, after)

    def _partial_solve(self, ins, dels, footprint) -> None:
        """Re-solve only the strata inside the batch's static footprint.

        Mirrors :meth:`SemiNaiveSolver._partial_solve`: the EDB diff lands
        in the retained exported store, affected components are re-solved
        from scratch against current upstream state, and components outside
        the (component-closed) footprint keep their retained fixpoint —
        which is exactly what a full solve() would recompute for them.
        """
        self.budget.begin()
        for pred, rows in ins.items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for pred, rows in dels.items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.discard(row)
        for index, component in enumerate(self.components):
            if index not in footprint.strata:
                self.metrics.strata_skipped += 1
                continue
            for pred in component.predicates:
                self._raw.get(pred).clear()
            if self.provenance is not None:
                self.provenance.clear_preds(component.predicates)
            self._solve_component(component, index)
            self._run_self_check(index)

    def relation(self, pred: str) -> frozenset[tuple]:
        self._require_solved()
        return self._export_rows(self._exported.get(pred).tuples)

    def raw_relation(self, pred: str) -> frozenset[tuple]:
        """The un-pruned inflationary fixpoint content (``D_raw``)."""
        self._require_solved()
        if pred in self.edb:
            return self._export_rows(self._exported.get(pred).tuples)
        return self._export_rows(self._raw.get(pred).tuples)

    def state_size(self) -> int:
        return self._exported.state_size() + self._raw.state_size()

    # -- component evaluation --------------------------------------------

    def _solve_component(self, component: Component, index: int) -> None:
        metrics = self.metrics
        stratum = (
            metrics.stratum(index, component.predicates) if metrics.active else None
        )
        started = perf_counter() if stratum is not None else 0.0
        local = RelationStore(
            self.arities, metrics=self._store_metrics(), backend=self.backend
        )
        specs = compile_agg_specs(component.rules, self.program)

        def lookup(pred: str) -> IndexedRelation:
            if pred in component.predicates:
                return local.get(pred)
            return self._exported.get(pred)

        def oracle(pred: str) -> int:
            return len(lookup(pred))

        # Re-plan kernels whose body cardinalities shifted since the last
        # visit (between strata only — never inside the fixpoint loop), then
        # resolve the per-rule kernels once for the whole component.
        self.kernels.refresh(component.rules, oracle)
        kernels = [
            (rule, self.kernels.kernel(rule, oracle=oracle).fn)
            for rule in component.rules
            if not rule.is_aggregation
            # Rules joining a forever-empty relation enumerate nothing;
            # don't compile (or fire) their kernels at all.
            and (self.impact is None or self.impact.rule_viable(rule))
        ]
        agg_kernels = {
            spec.pred: self.kernels.kernel(
                spec.rule, emit="keyvalue", oracle=oracle, spec=spec
            ).fn
            for spec in specs.values()
        }

        prov = self.provenance
        max_iterations = self.budget.iterations(self.MAX_ITERATIONS)
        for iteration in range(max_iterations):
            self._poll_budget(f"naive fixpoint, component {index}")
            changed = False
            round_new = 0
            for rule, kernel in kernels:
                if _faults.ACTIVE is not None:
                    _faults.fire("kernel.emit")
                target = local.get(rule.head.pred)
                if stratum is None:
                    for head_row in kernel(lookup):
                        if target.add(head_row):
                            changed = True
                            if prov is not None:
                                prov.annotate(rule.head.pred, head_row, rule)
                else:
                    t0 = perf_counter()
                    derived = dedup = 0
                    for head_row in kernel(lookup):
                        if target.add(head_row):
                            derived += 1
                            if prov is not None:
                                prov.annotate(rule.head.pred, head_row, rule)
                        else:
                            dedup += 1
                    metrics.rule_fired(
                        repr(rule), derived, dedup, perf_counter() - t0, stratum
                    )
                    if derived:
                        changed = True
                        round_new += derived
            for spec in specs.values():
                advanced = self._apply_aggregation(
                    spec, agg_kernels[spec.pred], lookup, local
                )
                if advanced:
                    changed = True
                    round_new += advanced
                    if stratum is not None:
                        metrics.derivations(stratum, advanced)
            if stratum is not None:
                metrics.round_delta(stratum, round_new)
            if not changed:
                break
        else:
            raise self._budget_exceeded(
                f"component {sorted(component.predicates)} exceeded "
                f"{max_iterations} iterations — diverging analysis? "
                f"(check eventual ⊑-monotonicity and widening)"
            )

        self._export_component(component, local, specs)
        if stratum is not None:
            metrics.stratum_end(stratum, perf_counter() - started)

    def _apply_aggregation(
        self, spec: AggSpec, kernel, lookup, local: RelationStore
    ) -> int:
        """One inflationary application: derive the current total per group
        (keeping previously derived totals — inflation).  Returns the number
        of newly derived total tuples."""
        if _faults.ACTIVE is not None:
            _faults.fire("aggregate.combine")
        groups: dict[tuple, object] = {}
        combine = spec.aggregator.combine
        for key, value in kernel(lookup):
            if key in groups:
                groups[key] = combine(groups[key], value)
            else:
                groups[key] = value
        target = local.get(spec.pred)
        prov = self.provenance
        advanced = 0
        for key, total in groups.items():
            row = spec.tuple_for(key, total)
            if target.add(row):
                advanced += 1
                if prov is not None:
                    prov.annotate(spec.pred, row, spec.rule)
        return advanced

    def _export_component(
        self, component: Component, local: RelationStore, specs: dict[str, AggSpec]
    ) -> None:
        for pred in component.predicates:
            raw = self._raw.get(pred)
            for row in local.get(pred).tuples:
                raw.add(row)
            exported = self._exported.get(pred)
            exported.clear()
            if pred in specs:
                rows = prune_aggregated(local.get(pred).tuples, specs[pred])
            else:
                rows = local.get(pred).tuples
            for row in rows:
                exported.add(row)
