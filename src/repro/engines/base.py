"""The common solver interface.

All four engines (naive, semi-naive, DRedL, Laddder) are drop-in
replacements behind this interface, mirroring how Laddder replaced DRedL
inside IncA/Viatra (paper Section 7: "the measurements of DRedL and Laddder
use the same analysis specification and back end library, except that we
configured different fixpoint algorithms").

Lifecycle::

    solver = SomeSolver(program)
    solver.add_facts("alloc", [("s", "S", "run"), ...])
    solver.solve()                      # initial (from-scratch) analysis
    solver.relation("ptlub")            # pruned, timeless exported view
    stats = solver.update(insertions={...}, deletions={...})   # one epoch

``relation`` returns the *exported* view: aggregated predicates are pruned
to the final aggregate per group; intermediate inflationary results and
timestamps are never visible (paper Section 4.1, postprocessing).
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..datalog.errors import BudgetExceededError, SolverError, ValidationError
from ..datalog.impact import Footprint
from ..datalog.normalize import normalize
from ..datalog.program import Program
from ..datalog.stratify import Component
from ..metrics import SolverMetrics
from ..robustness.watchdog import Budget
from .compile import KernelCache
from .intern import InternTable, intern_program, program_hash
from .prepare import prepare
from .relation import resolve_backend

FactChanges = Mapping[str, Iterable[tuple]]


@dataclass
class UpdateStats:
    """What one epoch cost and touched — the measurements of Section 7."""

    #: Exported tuples inserted/deleted by this update, per predicate.
    inserted: dict[str, set[tuple]] = field(default_factory=dict)
    deleted: dict[str, set[tuple]] = field(default_factory=dict)
    #: Internal work counter (derivation deltas processed); engine-specific
    #: but comparable between runs of the same engine.
    work: int = 0

    @property
    def impact(self) -> int:
        """Section 3's impact measure: number of affected output tuples."""
        return sum(len(s) for s in self.inserted.values()) + sum(
            len(s) for s in self.deleted.values()
        )


class Solver(ABC):
    """Base class: program compilation, fact management, exported views."""

    #: Fixpoint guard: iterations per component before declaring divergence.
    MAX_ITERATIONS = 100_000

    def __init__(
        self,
        program: Program,
        metrics: SolverMetrics | None = None,
        provenance: bool | None = None,
    ):
        #: The caller's program as handed in, before normalization — the
        #: guard's graceful-degradation path rebuilds a reference solver
        #: from it (re-normalizing a normalized program is not idempotent).
        self.source_program = program
        self.program = program.copy()
        normalize(self.program)
        #: Observability collector — a disabled instance by default, so the
        #: hot path only pays when the caller opts in (docs/OBSERVABILITY.md).
        self.metrics = metrics if metrics is not None else SolverMetrics(enabled=False)
        self.metrics.engine = type(self).__name__
        # Shared pre-planning pass (repro.engines.prepare): static checks
        # with the validate() first-error contract, dead-rule pruning
        # (opt out with REPRO_NO_PRUNE=1; docs/STATIC_CHECKS.md), and the
        # static change-impact index that update scheduling and kernel
        # binding consult (opt out with REPRO_NO_IMPACT=1;
        # docs/PERFORMANCE.md).  Exported views are unaffected either way.
        prepared = prepare(self.program)
        self.components: list[Component] = prepared.components
        #: Static change-impact index, or None under REPRO_NO_IMPACT=1.
        self.impact = prepared.impact
        #: Footprint of the most recent update() batch (None before the
        #: first update, or while impact scheduling is disabled); the
        #: service layer surfaces this in its stats op.
        self.last_footprint: Footprint | None = None
        self.metrics.dead_rules_pruned += prepared.dead_rules_pruned
        self.metrics.check_seconds += prepared.check_seconds
        self.metrics.impact_seconds += prepared.impact_seconds
        self.metrics.diagnostics_emitted += len(prepared.checked.diagnostics)
        self.arities = self.program.arities()
        self.edb = self.program.edb_predicates()
        self.idb = self.program.idb_predicates()
        #: Storage backend, resolved once from REPRO_BACKEND
        #: (docs/PERFORMANCE.md): "object" keeps raw-value rows, "columnar"
        #: interns every constant to a dense int handle and stores packed
        #: relations.  Exported views are bit-equal either way.
        self.backend = resolve_backend(self.arities)
        #: Backend-independent fingerprint of the (pruned) program, captured
        #: before interning rewrites the private copy — checkpoints compare
        #: against this, never against the handle-space rule text.
        self._program_hash = program_hash(self.program)
        #: Constant <-> handle table (columnar backend only).  The private
        #: program copy is rewritten into handle space in place; every
        #: public boundary externs through this table.
        self.intern: InternTable | None = None
        if self.backend == "columnar":
            self.intern = InternTable(metrics=self.metrics)
            intern_program(self.program, self.components, self.intern)
        self._facts: dict[str, set[tuple]] = {}
        self._solved = False
        #: Shared compiled-kernel cache: one specialized enumeration pipeline
        #: per (rule, pinned occurrence, bound set, emit mode) — see
        #: repro.engines.compile.  ``REPRO_INTERPRET=1`` swaps in run_plan-
        #: backed kernels with identical signatures.
        self.kernels = KernelCache(
            self.program, metrics=self.metrics, backend=self.backend
        )
        #: Rules no registered delta source can feed — some positive body
        #: literal reads a forever-empty predicate, so their kernels are
        #: never requested from the cache (engines filter at bind time).
        if self.impact is not None:
            self.metrics.rules_skipped_by_impact += sum(
                1
                for rule in self.program.rules
                if not self.impact.rule_viable(rule)
            )
        #: Fixpoint watchdog budgets (docs/ROBUSTNESS.md): iteration
        #: ceilings, wall-clock deadline, ascending-chain counter.  Defaults
        #: come from REPRO_MAX_ITERS / REPRO_MAX_CHAIN; mutate in place
        #: (``solver.budget.deadline = 5.0``) or assign a fresh Budget.
        self.budget = Budget.from_env()
        #: Run invariant self-checks after every solved component when set
        #: (``--self-check`` / REPRO_SELF_CHECK=1); violations raise
        #: InvariantViolationError with a diagnostic dump.
        self.self_check = bool(os.environ.get("REPRO_SELF_CHECK"))
        #: Active undo log installed by repro.robustness.guard.UpdateGuard;
        #: None outside a guarded update.
        self._undo: list | None = None
        #: Opt-in per-tuple provenance annotations (docs/PROVENANCE.md):
        #: every engine records (rule_id, height) per derived tuple at emit
        #: time, and repro.engines.explain reconstructs proof trees from
        #: them on demand.  ``Solver(provenance=True)`` or REPRO_PROVENANCE=1.
        if provenance is None:
            provenance = bool(os.environ.get("REPRO_PROVENANCE"))
        self.provenance = None
        if provenance:
            from ..provenance.store import ProvenanceStore

            self.provenance = ProvenanceStore(self.program, metrics=self.metrics)

    def _store_metrics(self) -> SolverMetrics | None:
        """The metrics object relation stores should count probes into, or
        None when collection is off (keeps ``matching`` branch-free-ish)."""
        return self.metrics if self.metrics.active else None

    # -- intern boundary helpers -------------------------------------------

    def _intern_row(self, row: tuple) -> tuple:
        """Caller row -> internal row (identity on the object backend)."""
        table = self.intern
        return row if table is None else table.intern_row(row)

    def _extern_row(self, row: tuple) -> tuple:
        """Internal row -> caller representation."""
        table = self.intern
        return row if table is None else table.extern_row(row)

    def _export_rows(self, rows: Iterable[tuple]) -> frozenset[tuple]:
        """Internal rows -> the public frozenset view, externed as needed."""
        table = self.intern
        if table is None:
            return frozenset(rows)
        extern_row = table.extern_row
        return frozenset(extern_row(row) for row in rows)

    # -- fact management ---------------------------------------------------

    def add_facts(self, pred: str, rows: Iterable[tuple]) -> None:
        """Stage input facts before :meth:`solve` (set semantics)."""
        self._check_edb(pred)
        bucket = self._facts.setdefault(pred, set())
        for row in rows:
            self._check_row(pred, row)
            bucket.add(self._intern_row(tuple(row)))

    def facts(self, pred: str) -> frozenset[tuple]:
        return self._export_rows(self._facts.get(pred, ()))

    def replace_facts(self, facts: FactChanges) -> None:
        """Discard every staged fact and stage ``facts`` instead.

        The supported way to point an un-solved solver at a different EDB
        snapshot (test oracles, replay harnesses) — assigning ``_facts``
        directly would bypass arity checks and constant interning."""
        self._facts = {}
        for pred, rows in facts.items():
            self.add_facts(pred, rows)

    def _fact_items(self) -> list[tuple[str, set[tuple]]]:
        """Staged fact relations worth materializing.  An *empty* bucket for
        a predicate no rule mentions has no registered arity and no
        observable effect, so it is skipped rather than tripping the strict
        relation stores."""
        return [
            (pred, rows)
            for pred, rows in self._facts.items()
            if rows or pred in self.arities
        ]

    def _check_edb(self, pred: str) -> None:
        if pred in self.idb:
            raise SolverError(f"{pred} is derived; only input relations take facts")

    def _check_row(self, pred: str, row: tuple) -> None:
        expected = self.arities.get(pred)
        if expected is None:
            # A fact relation no rule mentions: the first row fixes its
            # arity, so later rows — and the relation stores, which treat an
            # unknown predicate as an error — see a consistent declaration.
            self.arities[pred] = len(row)
        elif len(row) != expected:
            raise SolverError(
                f"{pred} expects arity {expected}, got {len(row)}: {row!r}"
            )

    def _normalize_changes(
        self, insertions: FactChanges | None, deletions: FactChanges | None
    ) -> tuple[dict[str, set[tuple]], dict[str, set[tuple]]]:
        """Validate an epoch's fact diff against the current EDB state and
        apply it to ``self._facts``.  Returns the effective (ins, del) sets —
        inserting a present fact or deleting an absent one is a no-op."""
        ins: dict[str, set[tuple]] = {}
        dels: dict[str, set[tuple]] = {}
        undo = self._undo
        for pred, rows in (deletions or {}).items():
            self._check_edb(pred)
            bucket = self._fact_bucket(pred, undo)
            for row in rows:
                row = tuple(row)
                self._check_row(pred, row)
                row = self._intern_row(row)
                if row in bucket:
                    bucket.discard(row)
                    dels.setdefault(pred, set()).add(row)
                    if undo is not None:
                        undo.append((bucket.add, row))
        for pred, rows in (insertions or {}).items():
            self._check_edb(pred)
            bucket = self._fact_bucket(pred, undo)
            for row in rows:
                row = tuple(row)
                self._check_row(pred, row)
                row = self._intern_row(row)
                if row not in bucket:
                    bucket.add(row)
                    ins.setdefault(pred, set()).add(row)
                    if undo is not None:
                        undo.append((bucket.discard, row))
        return ins, dels

    def _fact_bucket(self, pred: str, undo: list | None) -> set[tuple]:
        """``self._facts`` bucket for ``pred``, journaling creation so a
        rolled-back update does not leave phantom empty buckets behind."""
        bucket = self._facts.get(pred)
        if bucket is None:
            bucket = self._facts[pred] = set()
            if undo is not None:
                undo.append((self._facts.pop, pred, None))
        return bucket

    # -- impact-guided scheduling --------------------------------------------

    def _impact_footprint(
        self,
        ins: Mapping[str, set[tuple]],
        dels: Mapping[str, set[tuple]],
    ) -> Footprint | None:
        """The static footprint of one effective batch diff, or None when
        impact scheduling is off (``REPRO_NO_IMPACT=1``).  Records the
        derivation time into ``metrics.impact_seconds`` and publishes the
        result on :attr:`last_footprint` for the service stats op."""
        index = self.impact
        if index is None:
            self.last_footprint = None
            return None
        t0 = time.perf_counter()
        footprint = index.footprint(set(ins) | set(dels))
        self.metrics.impact_seconds += time.perf_counter() - t0
        self.last_footprint = footprint
        return footprint

    # -- solving -------------------------------------------------------------

    @abstractmethod
    def solve(self) -> None:
        """Run the initial from-scratch analysis over the staged facts."""

    @abstractmethod
    def update(
        self,
        insertions: FactChanges | None = None,
        deletions: FactChanges | None = None,
    ) -> UpdateStats:
        """Process one epoch of input changes; returns the exported diff."""

    @abstractmethod
    def relation(self, pred: str) -> frozenset[tuple]:
        """The exported (pruned, timeless) content of a predicate."""

    def relations(self) -> dict[str, frozenset[tuple]]:
        """All exported predicates."""
        return {
            pred: self.relation(pred) for pred in self.program.exported_predicates()
        }

    def state_size(self) -> int:
        """Engine-specific count of stored entries, for memory comparisons."""
        return 0

    def storage_profile(self) -> dict:
        """Bytes-per-tuple accounting of the exported stores (Section 7.2).

        Counts exactly the storage the backend choice changes — row shells,
        built index postings, materialized columns, and (columnar only) the
        intern table holding the single canonical copy of each constant.
        Engine-internal state (timelines, aggregation trees) is excluded;
        the memory benchmark deep-sizes the whole solver for that.
        """
        exported = getattr(self, "_exported", None)
        relations = (
            list(exported.relations.values()) if exported is not None else []
        )
        tuples = sum(len(rel) for rel in relations)
        total = sum(rel.storage_bytes() for rel in relations)
        profile = {
            "backend": self.backend,
            "exported_tuples": tuples,
            "exported_bytes": total,
            "bytes_per_tuple": (total / tuples) if tuples else 0.0,
        }
        if self.intern is not None:
            profile["interned_constants"] = len(self.intern)
            profile["intern_bytes"] = self.intern.table_bytes()
        return profile

    # -- robustness hooks ----------------------------------------------------

    def _poll_budget(self, context: str) -> None:
        """Wall-clock deadline check; called once per outer fixpoint step."""
        budget = self.budget
        if budget.deadline is None:
            return
        try:
            budget.poll(context)
        except BudgetExceededError:
            self.metrics.watchdog_trips += 1
            raise

    def _chain_advance(self, pred: str, key: tuple) -> None:
        """Tick the strictly-ascending-chain counter for one aggregation
        group; trips BudgetExceededError on a non-Noetherian climb."""
        try:
            self.budget.chain_advance(pred, key)
        except BudgetExceededError:
            self.metrics.watchdog_trips += 1
            raise

    def _budget_exceeded(self, message: str) -> BudgetExceededError:
        """Build the iteration-ceiling error, counting the trip."""
        self.metrics.watchdog_trips += 1
        return BudgetExceededError(message)

    def _run_self_check(self, index: int) -> None:
        """Validate engine invariants for component ``index`` if self-check
        mode is on; the time spent is metered separately so profiles show
        what the mode costs."""
        if not self.self_check:
            return
        from ..robustness.selfcheck import check_component

        t0 = time.perf_counter()
        try:
            check_component(self, index)
        finally:
            self.metrics.selfcheck_seconds += time.perf_counter() - t0

    # -- shared helpers ------------------------------------------------------

    def _require_solved(self) -> None:
        if not self._solved:
            raise SolverError("call solve() before querying or updating")

    def _aggregation_rule(self, pred: str):
        """The unique aggregation rule defining ``pred``, or None."""
        for rule in self.program.rules:
            if rule.head.pred == pred and rule.is_aggregation:
                return rule
        return None

    def _exported_diff(
        self,
        before: Mapping[str, frozenset[tuple]],
        after: Mapping[str, frozenset[tuple]],
    ) -> UpdateStats:
        stats = UpdateStats()
        for pred in set(before) | set(after):
            old = before.get(pred, frozenset())
            new = after.get(pred, frozenset())
            added = new - old
            removed = old - new
            if added:
                stats.inserted[pred] = added
            if removed:
                stats.deleted[pred] = removed
        return stats


__all__ = ["FactChanges", "Solver", "SolverError", "UpdateStats", "ValidationError"]
