"""Derivation explanations (provenance) for analysis results.

IDE clients don't just want *that* ``reach(proc)`` holds — they want to see
a derivation: which rule fired, on which premises, down to input facts.
:func:`explain` reconstructs one such derivation tree from any solved
solver by re-evaluating rules head-bound against the solver's exported
relations (the same technique as DRed's re-derivation check, turned into a
user-facing feature).

The search is depth-bounded and cycle-safe: a premise already on the
current path is reported as a ``(cycle)`` leaf rather than recursed into —
for inflationary fixpoints a non-cyclic derivation always exists, but the
first rule found may be the recursive one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datalog.ast import Constant, Literal, Rule, Variable
from ..datalog.errors import SolverError
from ..datalog.planning import plan_body
from .base import Solver
from .grounding import run_plan, term_value


@dataclass
class Derivation:
    """One node of a derivation tree."""

    pred: str
    row: tuple
    #: "fact" (EDB), "rule" (with the rule and premises), "aggregate"
    #: (value assembled from collecting premises), or "cycle"/"depth".
    kind: str
    rule: Rule | None = None
    premises: list["Derivation"] = field(default_factory=list)

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = f"{self.pred}{self.row}"
        if self.kind == "fact":
            lines = [f"{pad}{label}   [input fact]"]
        elif self.kind == "cycle":
            lines = [f"{pad}{label}   [via cycle]"]
        elif self.kind == "depth":
            lines = [f"{pad}{label}   [depth limit]"]
        elif self.kind == "aggregate":
            lines = [f"{pad}{label}   [aggregate of {len(self.premises)} values]"]
        else:
            lines = [f"{pad}{label}   [by {self.rule!r}]"]
        for premise in self.premises:
            lines.append(premise.format(indent + 1))
        return "\n".join(lines)

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.premises)


def explain(
    solver: Solver, pred: str, row: tuple, max_depth: int = 12
) -> Derivation:
    """Reconstruct one derivation of ``row`` in ``pred`` from the exported
    relations of a solved solver.  Raises :class:`SolverError` if the tuple
    is not present."""
    solver._require_solved()
    row = tuple(row)
    if row not in solver.relation(pred):
        raise SolverError(f"{pred}{row} is not derived")
    table = solver.intern
    if table is None:
        return _explain(solver, pred, row, path=set(), depth=max_depth)
    # Columnar backend: the solver's program and stores live in intern-handle
    # space, so the search runs there (the membership check above guarantees
    # every constant of ``row`` has a handle) and the finished tree is
    # externalized for the caller.
    tree = _explain(
        solver, pred, table.lookup_row(row), path=set(), depth=max_depth
    )
    _extern_tree(tree, table)
    return tree


def _extern_tree(node: Derivation, table) -> None:
    node.row = table.extern_row(node.row)
    for premise in node.premises:
        _extern_tree(premise, table)


def _explain(solver, pred, row, path, depth) -> Derivation:
    if pred in solver.edb:
        return Derivation(pred, row, "fact")
    if (pred, row) in path:
        return Derivation(pred, row, "cycle")
    if depth <= 0:
        return Derivation(pred, row, "depth")
    path = path | {(pred, row)}

    agg_rule = solver._aggregation_rule(pred)
    if agg_rule is not None:
        return _explain_aggregate(solver, pred, row, agg_rule, path, depth)

    # Gather a few candidate derivations and prefer one without cycle
    # leaves: the first rule found is often the recursive one, but a
    # grounded (fact-rooted) derivation reads far better.
    fallback: Derivation | None = None
    candidates = 0
    for rule in solver.program.rules_for(pred):
        binding = _bind_head(rule, row)
        if binding is None:
            continue
        plan = plan_body(rule, initially_bound=rule.head_variables())
        for theta in run_plan(plan, solver.program, _lookup(solver), dict(binding)):
            premises = []
            for item in rule.body:
                if isinstance(item, Literal) and not item.negated:
                    grounded = tuple(
                        term_value(t, theta) for t in item.atom.args
                    )
                    premises.append(
                        _explain(solver, item.pred, grounded, path, depth - 1)
                    )
                elif isinstance(item, Literal):
                    grounded = tuple(
                        term_value(t, theta) for t in item.atom.args
                    )
                    premises.append(
                        Derivation(f"!{item.pred}", grounded, "fact")
                    )
            candidate = Derivation(pred, row, "rule", rule=rule, premises=premises)
            if not _has_cycle(candidate):
                return candidate
            if fallback is None:
                fallback = candidate
            candidates += 1
            if candidates >= 8:
                return fallback
    if fallback is not None:
        return fallback
    # Present in the exported view but not re-derivable from exports alone
    # (e.g. derived from pruned intermediates): report it as opaque.
    return Derivation(pred, row, "depth")


def _has_cycle(node: Derivation) -> bool:
    if node.kind == "cycle":
        return True
    return any(_has_cycle(p) for p in node.premises)


def _explain_aggregate(solver, pred, row, rule, path, depth) -> Derivation:
    from .aggspec import AggSpec

    spec = AggSpec.compile(rule, solver.program)
    key, _value = spec.split_tuple(row)
    premises = []
    for theta in run_plan(spec.plan, solver.program, _lookup(solver), {}):
        theta_key, value = spec.key_and_value(theta)
        if theta_key != key:
            continue
        literal: Literal = spec.plan[0]
        grounded = tuple(term_value(t, theta) for t in literal.atom.args)
        premises.append(
            _explain(solver, literal.pred, grounded, path, depth - 1)
        )
    return Derivation(pred, row, "aggregate", rule=rule, premises=premises)


class _ExportView:
    """Adapter exposing exported relations with the matching() protocol."""

    def __init__(self, solver, pred):
        if solver.intern is not None:
            # Internal (handle-space) exported rows: the plans and registered
            # tests being re-run here come from the interned program copy.
            solver._require_solved()
            self._rows = frozenset(solver._exported.get(pred).tuples)
        else:
            self._rows = solver.relation(pred)
        self._arity = None

    def matching(self, pattern):
        out = []
        for row in self._rows:
            if all(p is None or p == v for p, v in zip(pattern, row)):
                out.append(row)
        return out

    def __contains__(self, row):
        return row in self._rows

    def __iter__(self):
        return iter(self._rows)


def _lookup(solver):
    cache: dict[str, _ExportView] = {}

    def get(pred: str) -> _ExportView:
        view = cache.get(pred)
        if view is None:
            view = cache[pred] = _ExportView(solver, pred)
        return view

    return get


def _bind_head(rule: Rule, row: tuple):
    binding: dict = {}
    for term, value in zip(rule.head.args, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif isinstance(term, Variable):
            if binding.get(term.name, value) != value:
                return None
            binding[term.name] = value
    return binding
