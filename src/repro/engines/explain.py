"""Derivation explanations (provenance) for analysis results.

IDE clients don't just want *that* ``reach(proc)`` holds — they want to see
a derivation: which rule fired, on which premises, down to input facts.
:func:`explain` reconstructs one such derivation tree from any solved
solver by re-evaluating rules head-bound against the solver's exported
relations (the same technique as DRed's re-derivation check, turned into a
user-facing feature).

With provenance capture enabled (``Solver(provenance=True)`` /
``REPRO_PROVENANCE=1``, docs/PROVENANCE.md), the search is **height
guided**: every derived tuple carries a ``(rule_id, height)`` annotation
recorded at emit time, so reconstruction tries the annotated rule first
and accepts the first grounding whose positive premises all precede the
node on the insertion clock.  Descent along strictly decreasing heights is
well-founded — no candidate enumeration, no cycle backtracking — making
proof search linear in the size of the returned tree.  Annotations are
hints, not ground truth: every accepted grounding is re-verified against
the exported views, and a node whose hint does not pan out (incremental
epochs can reorder the clock) falls back to the full search below.

The fallback search is depth-bounded and cycle-safe: a premise already on
the current path is reported as a ``(cycle)`` leaf rather than recursed
into — for inflationary fixpoints a non-cyclic derivation always exists,
but the first rule found may be the recursive one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from ..datalog.ast import Constant, Literal, Rule, Variable
from ..datalog.errors import SolverError
from ..datalog.planning import plan_body
from .base import Solver
from .grounding import run_plan, term_value
from .relation import ColumnIndexed


@dataclass
class Derivation:
    """One node of a derivation tree."""

    pred: str
    row: tuple
    #: "fact" (EDB), "rule" (with the rule and premises), "negation" (a
    #: negated body literal, satisfied by the atom's absence), "aggregate"
    #: (value assembled from collecting premises), or "cycle"/"depth".
    kind: str
    rule: Rule | None = None
    premises: list["Derivation"] = field(default_factory=list)

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = f"{self.pred}{self.row}"
        if self.kind == "fact":
            lines = [f"{pad}{label}   [input fact]"]
        elif self.kind == "negation":
            lines = [f"{pad}{label}   [absent, as required]"]
        elif self.kind == "cycle":
            lines = [f"{pad}{label}   [via cycle]"]
        elif self.kind == "depth":
            lines = [f"{pad}{label}   [depth limit]"]
        elif self.kind == "aggregate":
            lines = [f"{pad}{label}   [aggregate of {len(self.premises)} values]"]
        else:
            lines = [f"{pad}{label}   [by {self.rule!r}]"]
        for premise in self.premises:
            lines.append(premise.format(indent + 1))
        return "\n".join(lines)

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.premises)

    def height(self) -> int:
        return 1 + max((p.height() for p in self.premises), default=0)

    def to_dict(self, max_nodes: int | None = None) -> dict:
        """JSON-safe rendering (committed schema: docs/explain_schema.json).

        Row values render through the snapshot layer's ``stable_repr`` —
        the same form the service ``query`` op returns, so clients can
        round-trip rows between ops.  ``max_nodes`` bounds the total node
        count (pre-order); subtrees cut by the bound are summarized with a
        ``premises_omitted`` count on their parent.
        """
        from ..service.snapshot import stable_repr

        counter = [0]

        def render(node: "Derivation") -> dict:
            counter[0] += 1
            entry: dict = {
                "pred": node.pred,
                "row": [stable_repr(value) for value in node.row],
                "kind": node.kind,
            }
            if node.rule is not None:
                entry["rule"] = repr(node.rule)
            premises = []
            omitted = 0
            for premise in node.premises:
                if max_nodes is not None and counter[0] >= max_nodes:
                    omitted += 1
                    continue
                premises.append(render(premise))
            entry["premises"] = premises
            if omitted:
                entry["premises_omitted"] = omitted
            return entry

        return render(self)


def explain(
    solver: Solver, pred: str, row: tuple, max_depth: int = 12
) -> Derivation:
    """Reconstruct one derivation of ``row`` in ``pred`` from the exported
    relations of a solved solver.  Raises :class:`SolverError` if the tuple
    is not present."""
    solver._require_solved()
    metrics = solver.metrics
    metrics.provenance_explains += 1
    started = perf_counter()
    try:
        row = tuple(row)
        if row not in solver.relation(pred):
            raise SolverError(f"{pred}{row} is not derived")
        table = solver.intern
        lookup = _lookup(solver)
        if table is None:
            return _explain(solver, lookup, pred, row, path=set(), depth=max_depth)
        # Columnar backend: the solver's program and stores live in
        # intern-handle space, so the search runs there (the membership
        # check above guarantees every constant of ``row`` has a handle)
        # and the finished tree is externalized for the caller.
        tree = _explain(
            solver, lookup, pred, table.lookup_row(row), path=set(),
            depth=max_depth,
        )
        _extern_tree(tree, table)
        return tree
    finally:
        metrics.provenance_seconds += perf_counter() - started


def _extern_tree(node: Derivation, table) -> None:
    node.row = table.extern_row(node.row)
    for premise in node.premises:
        _extern_tree(premise, table)


def _explain(solver, lookup, pred, row, path, depth) -> Derivation:
    if pred in solver.edb:
        return Derivation(pred, row, "fact")
    if (pred, row) in path:
        return Derivation(pred, row, "cycle")
    if depth <= 0:
        return Derivation(pred, row, "depth")
    path = path | {(pred, row)}

    agg_rule = solver._aggregation_rule(pred)
    if agg_rule is not None:
        return _explain_aggregate(solver, lookup, pred, row, agg_rule, path, depth)

    prov = getattr(solver, "provenance", None)
    rules = solver.program.rules_for(pred)
    annotation = prov.get(pred, row) if prov is not None else None
    if annotation is not None:
        rule_id, height = annotation
        hinted = prov.rule_for(rule_id)
        if hinted is not None and hinted.head.pred == pred:
            rules = [hinted] + [r for r in rules if r is not hinted]
        # Height-guided pass: accept the first grounding whose positive
        # premises all strictly precede this node on the insertion clock.
        # Heights then decrease along every recursion, so the descent is
        # well-founded and needs no candidate enumeration — the linear-in-
        # tree-size reconstruction of Zhao et al.
        for rule in rules:
            binding = _bind_head(rule, row)
            if binding is None:
                continue
            plan = plan_body(rule, initially_bound=rule.head_variables())
            for theta in run_plan(plan, solver.program, lookup, dict(binding)):
                if not _descends(solver, prov, rule, theta, height):
                    continue
                solver.metrics.provenance_hits += 1
                return Derivation(
                    pred, row, "rule", rule=rule,
                    premises=_premises(solver, lookup, rule, theta, path, depth),
                )
        # The clock got reordered for this node (incremental re-insertion);
        # annotations are hints, so fall through to the full search.
        solver.metrics.provenance_fallbacks += 1

    # Gather a few candidate derivations and prefer one without cycle
    # leaves: the first rule found is often the recursive one, but a
    # grounded (fact-rooted) derivation reads far better.
    fallback: Derivation | None = None
    candidates = 0
    for rule in rules:
        binding = _bind_head(rule, row)
        if binding is None:
            continue
        plan = plan_body(rule, initially_bound=rule.head_variables())
        for theta in run_plan(plan, solver.program, lookup, dict(binding)):
            candidate = Derivation(
                pred, row, "rule", rule=rule,
                premises=_premises(solver, lookup, rule, theta, path, depth),
            )
            if not _has_cycle(candidate):
                return candidate
            if fallback is None:
                fallback = candidate
            candidates += 1
            if candidates >= 8:
                return fallback
    if fallback is not None:
        return fallback
    # Present in the exported view but not re-derivable from exports alone
    # (e.g. derived from pruned intermediates): report it as opaque.
    return Derivation(pred, row, "depth")


def _premises(solver, lookup, rule, theta, path, depth) -> list[Derivation]:
    """Build the premise nodes for one grounded body substitution."""
    premises = []
    for item in rule.body:
        if isinstance(item, Literal) and not item.negated:
            grounded = tuple(term_value(t, theta) for t in item.atom.args)
            premises.append(
                _explain(solver, lookup, item.pred, grounded, path, depth - 1)
            )
        elif isinstance(item, Literal):
            grounded = tuple(term_value(t, theta) for t in item.atom.args)
            premises.append(
                Derivation(f"!{item.pred}", grounded, "negation")
            )
    return premises


def _descends(solver, prov, rule, theta, height) -> bool:
    """Do all positive premises of this grounding strictly precede the
    head on the insertion clock?  (EDB premises always do.)"""
    for item in rule.body:
        if not isinstance(item, Literal) or item.negated:
            continue
        if item.pred in solver.edb:
            continue
        grounded = tuple(term_value(t, theta) for t in item.atom.args)
        annotation = prov.get(item.pred, grounded)
        if annotation is None or annotation[1] >= height:
            return False
    return True


def _has_cycle(node: Derivation) -> bool:
    if node.kind == "cycle":
        return True
    return any(_has_cycle(p) for p in node.premises)


def _explain_aggregate(solver, lookup, pred, row, rule, path, depth) -> Derivation:
    from .aggspec import AggSpec

    spec = AggSpec.compile(rule, solver.program)
    key, _value = spec.split_tuple(row)
    premises = []
    for theta in run_plan(spec.plan, solver.program, lookup, {}):
        theta_key, value = spec.key_and_value(theta)
        if theta_key != key:
            continue
        literal: Literal = spec.plan[0]
        grounded = tuple(term_value(t, theta) for t in literal.atom.args)
        premises.append(
            _explain(solver, lookup, literal.pred, grounded, path, depth - 1)
        )
    return Derivation(pred, row, "aggregate", rule=rule, premises=premises)


class _ExportView(ColumnIndexed):
    """Adapter exposing exported relations with the matching() protocol.

    A frozen :class:`ColumnIndexed` population: lazy per-column-subset hash
    indexes are built on first probe and live for the view's lifetime
    (views never mutate), so repeated premise probes during a large-tree
    reconstruction are dict lookups instead of full-relation scans.
    """

    __slots__ = ("_rows", "arity", "_indexes", "metrics", "packed", "_scan_cache")

    def __init__(self, solver, pred):
        if solver.intern is not None:
            # Internal (handle-space) exported rows: the plans and registered
            # tests being re-run here come from the interned program copy.
            solver._require_solved()
            self._rows = frozenset(solver._exported.get(pred).tuples)
        else:
            self._rows = solver.relation(pred)
        self.arity = solver.arities.get(pred, 0)
        self._indexes = {}
        self.metrics = solver._store_metrics()
        self.packed = solver.intern is not None
        self._scan_cache = None

    def _items(self):
        return self._rows

    def __contains__(self, row):
        return row in self._rows

    def __iter__(self):
        return iter(self._rows)

    def __len__(self):
        return len(self._rows)


def _lookup(solver):
    cache: dict[str, _ExportView] = {}

    def get(pred: str) -> _ExportView:
        view = cache.get(pred)
        if view is None:
            view = cache[pred] = _ExportView(solver, pred)
        return view

    return get


def _bind_head(rule: Rule, row: tuple):
    binding: dict = {}
    for term, value in zip(rule.head.args, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif isinstance(term, Variable):
            if binding.get(term.name, value) != value:
                return None
            binding[term.name] = value
    return binding
