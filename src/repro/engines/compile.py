"""Compiled rule kernels: specialized enumeration pipelines per planned body.

:func:`repro.engines.grounding.run_plan` is a recursive generator that
re-dispatches on AST node types for every tuple and threads bindings through
a dict — correct, but the dominant cost of every engine.  This module lowers
each planned body into a flat, specialized Python generator *once* per
``(rule, pinned occurrence, bound set, emit mode)``:

* variables become fixed local slots instead of dict keys,
* ``pattern_for``/``unify_tuple`` specialize into per-literal probe-and-bind
  steps — constants and repeated-variable checks are resolved at compile
  time, and fully bound probes become plain membership tests,
* ``Eval``/``Test``/negation become inlined guards with their callables
  resolved from the program registries up front,
* the head projection (or aggregation key/value split) is fused into the
  innermost loop, so no intermediate binding dict ever exists.

The generated source is plain Python compiled with :func:`exec`; the
original interpreter remains available behind ``REPRO_INTERPRET=1`` (or
``KernelCache(interpret=True)``) with *identical* kernel signatures, both as
an escape hatch and as the reference implementation for differential tests.

Kernels are produced and cached by :class:`KernelCache`, one per solver.
When a cardinality oracle is supplied the body is planned cost-aware
(:func:`repro.datalog.planning.plan_body` with ``oracle=``) and the relation
sizes seen at compile time are remembered; :meth:`KernelCache.refresh`
evicts kernels whose body relations have since grown or shrunk by more than
``REPRO_REPLAN_FACTOR`` (default 4×), so join orders track cardinality
shifts between strata visits without ever re-planning inside a fixpoint
loop.

Emit modes
----------

``head``
    yield the instantiated head tuple (the common case);
``regs``
    yield the full variable valuation as a tuple in sorted-name order — the
    Laddder engine's canonical substitution for dedup and firing-time
    grounding (see :class:`RuleShape`);
``keyvalue``
    yield ``(group key, aggregand value)`` for an aggregation rule;
``exists``
    yield ``True`` per satisfying substitution (re-derivation checks).

Call signatures (identical in compiled and interpreted mode):

* scan kernels: ``fn(lookup, neg_skip=None)``
* pinned kernels: ``fn(lookup, row, neg_skip=None)`` — the pinned
  occurrence is unified against ``row`` in a fused prologue; a mismatch
  yields nothing (the ``bind_pinned(...) is None`` case);
* bound kernels: ``fn(lookup, binding, neg_skip=None)`` — ``binding`` is a
  name->value mapping covering the declared bound set.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Callable, Iterable, Iterator

from ..datalog.ast import (
    AggTerm,
    BodyItem,
    Constant,
    Eval,
    Literal,
    Rule,
    Term,
    Test,
    Variable,
)
from ..datalog.planning import CardinalityOracle, plan_body
from ..datalog.program import Program
from ..robustness import faults as _faults
from .grounding import Lookup, bind_pinned, instantiate, run_plan

#: Default re-plan threshold: a kernel is re-planned when one of its body
#: relations grew or shrank by at least this factor since it was compiled.
DEFAULT_REPLAN_FACTOR = 4.0

_KERNEL_NAME = "_kernel"


def interpret_requested() -> bool:
    """True when ``REPRO_INTERPRET`` asks for the run_plan fallback."""
    return os.environ.get("REPRO_INTERPRET", "").strip() not in ("", "0")


def replan_factor_from_env() -> float:
    """The configured re-plan threshold (``<= 0`` disables re-planning)."""
    raw = os.environ.get("REPRO_REPLAN_FACTOR", "").strip()
    if not raw:
        return DEFAULT_REPLAN_FACTOR
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_REPLAN_FACTOR


# ---------------------------------------------------------------------------
# code generation


class _Codegen:
    """Line buffer + closure environment for one generated function."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 1
        self.env: dict[str, object] = {}
        self._consts = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def const(self, value: object) -> str:
        """Bind ``value`` into the closure environment, return its name.

        Constants may be arbitrary hashable Python objects (lattice
        elements), so they travel via the environment rather than ``repr``.
        """
        name = f"_c{self._consts}"
        self._consts += 1
        self.env[name] = value
        return name

    def source(self, header: str) -> str:
        body = self.lines or ["    pass"]
        return header + "\n" + "\n".join(body)


def _tuple_expr(parts: list[str]) -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


class _KernelBuilder:
    """Lowers one planned body into a specialized generator function.

    Under the columnar backend (``backend="columnar"``) the lowering skips
    :meth:`~repro.engines.relation.ColumnIndexed.matching` entirely: the
    bound-column set of every probe is known at compile time, so the kernel
    hoists ``index_for(cols)`` dictionaries into its prologue and probes
    them with inline packed integer keys; zero-bound scans read the cached
    ``scan_rows()`` snapshot; and the innermost enumeration is emitted as
    one batched list comprehension (see ``batch_tail``) instead of a
    per-row loop.
    """

    def __init__(
        self,
        program: Program,
        rule: Rule,
        plan: list[BodyItem],
        backend: str = "object",
        metrics=None,
    ):
        self.program = program
        self.rule = rule
        self.plan = plan
        self.g = _Codegen()
        self._slots: dict[str, str] = {}
        self.bound: set[str] = set()
        self._temps = 0
        self.columnar = backend == "columnar"
        #: Probe counters are compiled in only while collection is on —
        #: the increments sit in the innermost loops.
        self.counted = (
            self.g.const(metrics)
            if metrics is not None and metrics.active
            else None
        )
        #: ``(relation local, cols) -> hoisted index local`` plus the hoist
        #: lines themselves, spliced after the relation hoists.
        self._index_refs: dict[tuple[str, tuple[int, ...]], str] = {}
        self.index_lines: list[str] = []

    def slot(self, var_name: str) -> str:
        name = self._slots.get(var_name)
        if name is None:
            name = self._slots[var_name] = f"_v{len(self._slots)}"
        return name

    def _temp(self) -> str:
        name = f"_t{self._temps}"
        self._temps += 1
        return name

    def term_expr(self, term: Term) -> str:
        """A bound term as an expression (constant or bound variable)."""
        if isinstance(term, Constant):
            return self.g.const(term.value)
        return self.slot(term.name)

    # -- prologues ---------------------------------------------------------

    def hoist_relations(self, skip_first: bool) -> dict[str, str]:
        """``_rN = lookup('pred')`` once per predicate the plan touches."""
        rels: dict[str, str] = {}
        items = self.plan[1:] if skip_first else self.plan
        for item in items:
            if isinstance(item, Literal) and item.pred not in rels:
                name = f"_r{len(rels)}"
                rels[item.pred] = name
                self.g.emit(f"{name} = lookup({item.pred!r})")
        return rels

    def pinned_prologue(self, literal: Literal) -> None:
        """Unify ``_row`` against the pinned occurrence; mismatch => return.

        Mirrors :func:`repro.engines.grounding.bind_pinned` exactly:
        constants are equality-checked, first variable occurrences bind,
        repeated occurrences are consistency-checked.
        """
        g = self.g
        for i, term in enumerate(literal.atom.args):
            if isinstance(term, Constant):
                g.emit(f"if _row[{i}] != {g.const(term.value)}: return")
            elif term.name in self.bound:
                g.emit(f"if _row[{i}] != {self.slot(term.name)}: return")
            else:
                g.emit(f"{self.slot(term.name)} = _row[{i}]")
                self.bound.add(term.name)

    def bound_prologue(self, names: Iterable[str]) -> None:
        """Unpack the declared bound set from the ``_binding`` mapping."""
        for name in sorted(names):
            self.g.emit(f"{self.slot(name)} = _binding[{name!r}]")
            self.bound.add(name)

    # -- body items --------------------------------------------------------

    def _analyze(self, item: Literal):
        """Split one positive literal's argument positions by binding state:
        ``(bound position, expression)`` pairs, first-occurrence frees, and
        repeated-free filter positions."""
        bound_exprs: list[tuple[int, str]] = []
        frees: list[tuple[int, str]] = []
        repeats: list[tuple[int, str]] = []
        seen_here: set[str] = set()
        for i, term in enumerate(item.atom.args):
            if isinstance(term, Constant):
                bound_exprs.append((i, self.g.const(term.value)))
            elif term.name in self.bound:
                bound_exprs.append((i, self.slot(term.name)))
            elif term.name in seen_here:
                # Repeated free variable within one atom: the first
                # occurrence binds, later ones filter (unify_tuple).
                repeats.append((i, term.name))
            else:
                seen_here.add(term.name)
                frees.append((i, term.name))
        return bound_exprs, frees, repeats

    def index_ref(self, rel: str, cols: tuple[int, ...]) -> str:
        """Hoist the ``cols`` index dict into the prologue, once per pair.

        The built-index hit goes straight at ``_indexes`` (kernels are
        called once per delta, so the prologue itself is hot); only the
        first probe after an index-dropping event pays ``index_for``.
        """
        name = self._index_refs.get((rel, cols))
        if name is None:
            name = f"_i{len(self._index_refs)}"
            self._index_refs[(rel, cols)] = name
            self.index_lines.append(
                f"    {name} = {rel}._indexes.get({cols!r})"
            )
            self.index_lines.append(
                f"    if {name} is None: {name} = {rel}.index_for({cols!r})"
            )
        return name

    @staticmethod
    def _packed_key(exprs: list[str]) -> str:
        """The inline packed-int key over bound-column expressions, matching
        :meth:`repro.engines.relation.ColumnIndexed._key_for` exactly."""
        key = exprs[0]
        for expr in exprs[1:]:
            key = f"(({key} << 32) | {expr})"
        return key

    def _membership(self, item: Literal, rels: dict[str, str], bound_exprs) -> None:
        # Fully bound probe: plain membership, no enumeration.
        g = self.g
        pattern = [expr for _, expr in bound_exprs]
        g.emit(f"if {_tuple_expr(pattern)} in {rels[item.pred]}:")
        g.indent += 1

    def positive(self, item: Literal, rels: dict[str, str]) -> None:
        g = self.g
        bound_exprs, frees, repeats = self._analyze(item)
        rel = rels[item.pred]
        if not frees and not repeats:
            self._membership(item, rels, bound_exprs)
            return
        row = self._temp()
        if not self.columnar:
            pattern = [""] * len(item.atom.args)
            for i, expr in bound_exprs:
                pattern[i] = expr
            for i, _ in frees:
                pattern[i] = "None"
            for i, _ in repeats:
                pattern[i] = "None"
            g.emit(f"for {row} in {rel}.matching({_tuple_expr(pattern)}):")
            g.indent += 1
        elif not bound_exprs:
            src = self._temp()
            g.emit(f"{src} = {rel}.scan_rows()")
            if self.counted is not None:
                g.emit(f"{self.counted}.join_probes += 1")
                g.emit(f"{self.counted}.join_probe_rows += len({src})")
            g.emit(f"for {row} in {src}:")
            g.indent += 1
        else:
            cols = tuple(i for i, _ in bound_exprs)
            index = self.index_ref(rel, cols)
            key = self._packed_key([expr for _, expr in bound_exprs])
            bucket = self._temp()
            g.emit(f"{bucket} = {index}.get({key})")
            if self.counted is not None:
                g.emit(f"{self.counted}.join_probes += 1")
            g.emit(f"if {bucket} is not None:")
            g.indent += 1
            if self.counted is not None:
                g.emit(f"{self.counted}.join_probe_rows += len({bucket})")
            # Snapshot the live bucket: downstream consumers mutate the
            # relation while the generator is suspended mid-iteration.
            g.emit(f"for {row} in tuple({bucket}):")
            g.indent += 1
        for i, name in frees:
            g.emit(f"{self.slot(name)} = {row}[{i}]")
            self.bound.add(name)
        for i, name in repeats:
            g.emit(f"if {row}[{i}] != {self.slot(name)}: continue")

    def negated(self, item: Literal, rels: dict[str, str]) -> None:
        # The planner guarantees every argument is bound here.
        g = self.g
        parts = [self.term_expr(t) for t in item.atom.args]
        row = self._temp()
        g.emit(f"{row} = {_tuple_expr(parts)}")
        g.emit(
            f"if (neg_skip is not None and neg_skip == ({item.pred!r}, {row})) "
            f"or {row} not in {rels[item.pred]}:"
        )
        g.indent += 1

    def _callable(self, registry: dict, name: str, kind: str) -> str:
        fn = registry.get(name)
        if fn is not None:
            return self.g.const(fn)
        # Unknown at compile time: defer the KeyError to kernel run time,
        # matching the interpreter's failure point.
        reg = self.g.const(registry)
        return f"{reg}[{name!r}]"

    def eval_item(self, item: Eval) -> None:
        g = self.g
        fn = self._callable(self.program.functions, item.fn, "function")
        call = f"{fn}({', '.join(self.term_expr(a) for a in item.args)})"
        if item.var.name in self.bound:
            g.emit(f"if {call} == {self.slot(item.var.name)}:")
            g.indent += 1
        else:
            g.emit(f"{self.slot(item.var.name)} = {call}")
            self.bound.add(item.var.name)

    def test_item(self, item: Test) -> None:
        fn = self._callable(self.program.tests, item.fn, "test")
        self.g.emit(f"if {fn}({', '.join(self.term_expr(a) for a in item.args)}):")
        self.g.indent += 1

    def lower_body(
        self, rels: dict[str, str], start: int, stop: int | None = None
    ) -> None:
        for item in self.plan[start:stop]:
            if isinstance(item, Literal):
                if item.negated:
                    self.negated(item, rels)
                else:
                    self.positive(item, rels)
            elif isinstance(item, Eval):
                self.eval_item(item)
            elif isinstance(item, Test):
                self.test_item(item)
            else:  # pragma: no cover - planner admits only these
                raise TypeError(f"unknown body item {item!r}")

    # -- emit tails --------------------------------------------------------

    def emit_expr(self, emit: str, spec, var_order: tuple[str, ...]) -> str:
        """The yielded value as an expression over the current slots."""
        if emit == "head":
            return _tuple_expr([self.term_expr(t) for t in self.rule.head.args])
        if emit == "regs":
            return _tuple_expr([self.slot(n) for n in var_order])
        if emit == "keyvalue":
            key_parts: list[str] = []
            value = None
            for i, term in enumerate(spec.head.args):
                if i == spec.agg_pos:
                    value = self.slot(term.var.name)
                else:
                    key_parts.append(self.term_expr(term))
            return f"({_tuple_expr(key_parts)}, {value})"
        if emit == "exists":
            return "True"
        raise ValueError(f"unknown emit mode {emit!r}")  # pragma: no cover

    def emit_tail(self, emit: str, spec, var_order: tuple[str, ...]) -> None:
        self.g.emit(f"yield {self.emit_expr(emit, spec, var_order)}")

    def batch_tail(
        self,
        item: Literal,
        rels: dict[str, str],
        emit: str,
        spec,
        var_order: tuple[str, ...],
    ) -> bool:
        """Lower the innermost positive literal as one batched emission.

        Instead of loop / unpack / yield per row, the kernel materializes
        ``_batch = [<emit expr> for row in <source> if <filters>]`` and
        ``yield from``s it — the enumeration runs at comprehension speed and,
        because the whole batch is built before control returns to the
        consumer, the live index bucket can be iterated without a snapshot
        copy.  Returns False (caller falls back to the per-row path) when
        the literal is fully bound, as there is nothing to enumerate.
        """
        g = self.g
        bound_exprs, frees, repeats = self._analyze(item)
        if not frees and not repeats:
            return False
        rel = rels[item.pred]
        row = self._temp()
        for i, name in frees:
            self._slots[name] = f"{row}[{i}]"
            self.bound.add(name)
        conds = [f"{row}[{i}] == {self._slots[name]}" for i, name in repeats]
        expr = self.emit_expr(emit, spec, var_order)
        suffix = "".join(f" if {cond}" for cond in conds)
        if not bound_exprs:
            src = self._temp()
            g.emit(f"{src} = {rel}.scan_rows()")
            if self.counted is not None:
                g.emit(f"{self.counted}.join_probes += 1")
                g.emit(f"{self.counted}.join_probe_rows += len({src})")
            g.emit(f"_batch = [{expr} for {row} in {src}{suffix}]")
        else:
            cols = tuple(i for i, _ in bound_exprs)
            index = self.index_ref(rel, cols)
            key = self._packed_key([e for _, e in bound_exprs])
            bucket = self._temp()
            g.emit(f"{bucket} = {index}.get({key})")
            if self.counted is not None:
                g.emit(f"{self.counted}.join_probes += 1")
            g.emit(f"if {bucket} is not None:")
            g.indent += 1
            if self.counted is not None:
                g.emit(f"{self.counted}.join_probe_rows += len({bucket})")
            g.emit(f"_batch = [{expr} for {row} in {bucket}{suffix}]")
        if self.counted is not None:
            g.emit(f"{self.counted}.batch_rows_emitted += len(_batch)")
        g.emit("yield from _batch")
        return True


def compile_kernel(
    program: Program,
    rule: Rule,
    plan: list[BodyItem],
    *,
    mode: str = "scan",
    bound: frozenset[str] = frozenset(),
    emit: str = "head",
    spec=None,
    var_order: tuple[str, ...] = (),
    backend: str = "object",
    metrics=None,
) -> Callable:
    """Generate and ``exec`` one specialized kernel for ``plan``."""
    builder = _KernelBuilder(program, rule, plan, backend=backend, metrics=metrics)
    args = ["lookup"]
    if mode == "pinned":
        args.append("_row")
        builder.pinned_prologue(plan[0])
    elif mode == "bound":
        args.append("_binding")
        builder.bound_prologue(bound)
    header = f"def {_KERNEL_NAME}({', '.join(args)}, neg_skip=None):"
    # Relation hoists belong above the prologue lines in execution order,
    # but the prologue emits straight-line code only, so ordering within the
    # preamble is irrelevant; keep hoists after to reuse the line buffer.
    start = 1 if mode == "pinned" else 0
    prologue = builder.g.lines
    builder.g.lines = []
    rels = builder.hoist_relations(skip_first=mode == "pinned")
    hoists = builder.g.lines
    builder.g.lines = []
    # Columnar kernels fuse the innermost positive literal with the emit
    # into one batched comprehension; ``exists`` keeps the per-row path
    # (callers rely on its lazy short-circuit).
    batch_at = None
    if (
        builder.columnar
        and emit in ("head", "regs", "keyvalue")
        and len(plan) > start
        and isinstance(plan[-1], Literal)
        and not plan[-1].negated
    ):
        batch_at = len(plan) - 1
    batched = False
    if batch_at is not None:
        builder.lower_body(rels, start, stop=batch_at)
        batched = builder.batch_tail(plan[batch_at], rels, emit, spec, var_order)
        if not batched:
            builder.positive(plan[batch_at], rels)
    else:
        builder.lower_body(rels, start)
    if not batched:
        builder.emit_tail(emit, spec, var_order)
    body = builder.g.lines
    # Final line order: relation hoists, hoisted index dicts (which read
    # the relation locals), the mode prologue, then the lowered body.
    builder.g.lines = hoists + builder.index_lines + prologue + body
    source = builder.g.source(header)
    namespace = dict(builder.g.env)
    code = compile(source, f"<kernel:{rule.head.pred}>", "exec")
    exec(code, namespace)
    fn = namespace[_KERNEL_NAME]
    fn.__kernel_source__ = source
    return fn


# ---------------------------------------------------------------------------
# interpreter-backed kernels (REPRO_INTERPRET=1)


def interpret_kernel(
    program: Program,
    rule: Rule,
    plan: list[BodyItem],
    *,
    mode: str = "scan",
    emit: str = "head",
    spec=None,
    var_order: tuple[str, ...] = (),
) -> Callable:
    """A ``run_plan``-backed kernel with the compiled call signature."""
    head = rule.head
    if emit == "head":
        def project(binding):
            return instantiate(head, binding)
    elif emit == "regs":
        def project(binding):
            return tuple(binding[name] for name in var_order)
    elif emit == "keyvalue":
        def project(binding):
            return spec.key_and_value(binding)
    elif emit == "exists":
        def project(binding):
            return True
    else:  # pragma: no cover
        raise ValueError(f"unknown emit mode {emit!r}")

    if mode == "scan":
        def kernel(lookup, neg_skip=None):
            for binding in run_plan(plan, program, lookup, {}, 0, neg_skip):
                yield project(binding)
    elif mode == "pinned":
        literal = plan[0]

        def kernel(lookup, _row, neg_skip=None):
            binding = bind_pinned(literal, _row)
            if binding is None:
                return
            for theta in run_plan(plan, program, lookup, binding, 1, neg_skip):
                yield project(theta)
    elif mode == "bound":
        def kernel(lookup, _binding, neg_skip=None):
            for theta in run_plan(plan, program, lookup, dict(_binding), 0, neg_skip):
                yield project(theta)
    else:  # pragma: no cover
        raise ValueError(f"unknown kernel mode {mode!r}")
    return kernel


# ---------------------------------------------------------------------------
# rule shapes (Laddder): canonical register order + per-literal grounders


class RuleShape:
    """Positional view of one rule over its canonical register tuple.

    ``var_order`` is the sorted tuple of body-variable names; a ``regs``
    kernel yields valuations in exactly this order, so ``(rule, regs)`` is a
    canonical substitution key (the compiled analogue of
    ``tuple(sorted(theta.items()))``).  ``head_of(regs)`` instantiates the
    head; ``literals`` holds ``(negated, pred, grounder)`` per relational
    body atom, where ``grounder(regs)`` builds that atom's ground row — the
    Laddder engine uses these to compute firing times without a binding
    dict.
    """

    __slots__ = ("rule", "var_order", "head_of", "literals")

    def __init__(self, rule: Rule):
        self.rule = rule
        self.var_order = tuple(
            sorted(v.name for v in rule.body_variables() | rule.head_variables())
        )
        index = {name: i for i, name in enumerate(self.var_order)}
        self.head_of = self._projector(rule.head.args, index)
        self.literals = tuple(
            (lit.negated, lit.pred, self._projector(lit.atom.args, index))
            for lit in rule.body_literals()
        )

    @staticmethod
    def _projector(terms, index: dict[str, int]) -> Callable[[tuple], tuple]:
        env: dict[str, object] = {}
        parts = []
        for k, term in enumerate(terms):
            if isinstance(term, Constant):
                name = f"_c{k}"
                env[name] = term.value
                parts.append(name)
            elif isinstance(term, AggTerm):  # pragma: no cover - engine guard
                raise ValueError("cannot project an aggregation slot")
            else:
                parts.append(f"_s[{index[term.name]}]")
        return eval(f"lambda _s: {_tuple_expr(parts)}", env)


# ---------------------------------------------------------------------------
# aggregation extractors: pinned collecting-literal row -> (key, value)


def compile_extractor(spec, *, interpret: bool = False) -> Callable:
    """``row -> (group key, aggregand value) | None`` for one AggSpec.

    The hot path of every engine's aggregation advance binds a collecting
    tuple against the single body literal and splits it per the head; this
    fuses both steps.  ``None`` signals a pinned-unification mismatch
    (constant or repeated-variable conflict in the collecting literal).
    """
    literal = spec.rule.body[0]
    if interpret:
        def extract(row):
            binding = bind_pinned(literal, row)
            if binding is None:
                return None
            return spec.key_and_value(binding)

        return extract

    g = _Codegen()
    slots: dict[str, str] = {}
    for i, term in enumerate(literal.atom.args):
        if isinstance(term, Constant):
            g.emit(f"if _row[{i}] != {g.const(term.value)}: return None")
        elif term.name in slots:
            g.emit(f"if _row[{i}] != {slots[term.name]}: return None")
        else:
            slots[term.name] = f"_v{len(slots)}"
            g.emit(f"{slots[term.name]} = _row[{i}]")
    key_parts: list[str] = []
    value = None
    for i, term in enumerate(spec.head.args):
        if i == spec.agg_pos:
            value = slots[term.var.name]
        elif isinstance(term, Constant):
            key_parts.append(g.const(term.value))
        else:
            key_parts.append(slots[term.name])
    g.emit(f"return ({_tuple_expr(key_parts)}, {value})")
    source = g.source("def _extract(_row):")
    namespace = dict(g.env)
    exec(compile(source, f"<extractor:{spec.pred}>", "exec"), namespace)
    fn = namespace["_extract"]
    fn.__kernel_source__ = source
    return fn


# ---------------------------------------------------------------------------
# the cache


class RuleKernel:
    """One cached kernel: the callable plus its replan bookkeeping."""

    __slots__ = ("fn", "plan", "rule", "mode", "emit", "sizes", "compiled")

    def __init__(self, fn, plan, rule, mode, emit, sizes, compiled):
        self.fn = fn
        self.plan = plan
        self.rule = rule
        self.mode = mode
        self.emit = emit
        #: pred -> relation size at compile time (None: never re-planned).
        self.sizes = sizes
        self.compiled = compiled

    def __call__(self, *args, **kwargs) -> Iterator:
        return self.fn(*args, **kwargs)


class KernelCache:
    """Per-solver cache of compiled kernels, keyed by
    ``(rule, pinned, bound-set, emit mode)``.

    All four engines share one instance (created in ``Solver.__init__``), so
    planning/compilation happens once per distinct key for the lifetime of
    the solver — never inside a fixpoint loop.  ``refresh`` implements the
    between-strata re-planning policy.
    """

    def __init__(
        self,
        program: Program,
        metrics=None,
        interpret: bool | None = None,
        replan_factor: float | None = None,
        backend: str = "object",
    ):
        self.program = program
        self.metrics = metrics
        self.backend = backend
        self.interpret = interpret_requested() if interpret is None else interpret
        self.replan_factor = (
            replan_factor_from_env() if replan_factor is None else replan_factor
        )
        self._kernels: dict[tuple, RuleKernel] = {}
        #: rule id -> keys of that rule's kernels (refresh never scans the
        #: whole cache: updates visit one component at a time and tiny
        #: epochs cannot afford a sweep over every solver kernel).
        self._by_rule: dict[int, list[tuple]] = {}
        self._shapes: dict[int, RuleShape] = {}
        self._extractors: dict[int, Callable] = {}

    def kernel(
        self,
        rule: Rule,
        *,
        pinned: int | None = None,
        bound: Iterable[str] = (),
        emit: str = "head",
        oracle: CardinalityOracle | None = None,
        spec=None,
    ) -> RuleKernel:
        """Get or build the kernel for one (rule, pinned, bound, emit)."""
        bound_names = frozenset(bound)
        key = (id(rule), pinned, bound_names, emit)
        cached = self._kernels.get(key)
        metrics = self.metrics
        if cached is not None:
            if metrics is not None:
                metrics.plan_cache_hits += 1
            return cached
        started = perf_counter()
        if metrics is not None:
            metrics.plan_cache_misses += 1
        # Exception safety: nothing is registered (no ``_kernels`` entry, no
        # ``_by_rule`` key) until the build fully succeeds, so a kernel that
        # raises mid-stratum leaves the cache exactly as it was and a retry
        # re-plans from scratch.  The time already spent is still metered.
        try:
            if _faults.ACTIVE is not None:
                _faults.fire("compile.build")
            initially_bound = {Variable(n) for n in bound_names} or None
            plan = plan_body(
                rule, pinned=pinned, initially_bound=initially_bound, oracle=oracle
            )
            mode = (
                "pinned" if pinned is not None
                else ("bound" if bound_names else "scan")
            )
            var_order = ()
            if emit == "regs":
                var_order = self.shape(rule).var_order
            if self.interpret:
                fn = interpret_kernel(
                    self.program, rule, plan,
                    mode=mode, emit=emit, spec=spec, var_order=var_order,
                )
            else:
                fn = compile_kernel(
                    self.program, rule, plan,
                    mode=mode, bound=bound_names, emit=emit, spec=spec,
                    var_order=var_order, backend=self.backend,
                    metrics=self.metrics,
                )
        except BaseException:
            if metrics is not None:
                metrics.compile_seconds += perf_counter() - started
            raise
        sizes = None
        if oracle is not None:
            sizes = {
                item.pred: oracle(item.pred)
                for item in plan
                if isinstance(item, Literal)
            }
        kernel = RuleKernel(fn, plan, rule, mode, emit, sizes, not self.interpret)
        self._kernels[key] = kernel
        self._by_rule.setdefault(id(rule), []).append(key)
        if metrics is not None:
            metrics.rules_compiled += 1
            metrics.compile_seconds += perf_counter() - started
        return kernel

    def shape(self, rule: Rule) -> RuleShape:
        shape = self._shapes.get(id(rule))
        if shape is None:
            shape = self._shapes[id(rule)] = RuleShape(rule)
        return shape

    def extractor(self, spec) -> Callable:
        fn = self._extractors.get(id(spec.rule))
        if fn is None:
            fn = compile_extractor(spec, interpret=self.interpret)
            self._extractors[id(spec.rule)] = fn
        return fn

    def replan_guard(
        self, rules: Iterable[Rule]
    ) -> dict[str, tuple[float, float]]:
        """Per-predicate safe size intervals for ``rules``' cached kernels.

        ``guard[pred] = (lo, hi)`` such that while every watched predicate's
        size stays strictly inside its interval, :meth:`refresh` is
        guaranteed to evict nothing — callers on a hot path can verify the
        guard (a handful of ``len()`` comparisons) and skip the full sweep.
        The intervals intersect, per predicate, each kernel's non-eviction
        range ``(old/factor, factor * max(1, old))``; an empty dict means no
        kernel can go stale.  Recompute after any refresh that evicted or
        after new kernels were built.
        """
        factor = self.replan_factor
        guard: dict[str, tuple[float, float]] = {}
        if factor <= 0:
            return guard
        for rule in rules:
            for key in self._by_rule.get(id(rule), ()):
                kernel = self._kernels.get(key)
                if kernel is None or not kernel.sizes:
                    continue
                for pred, old in kernel.sizes.items():
                    lo = old / factor if old >= factor else float("-inf")
                    hi = factor * max(1, old)
                    cur = guard.get(pred)
                    if cur is None:
                        guard[pred] = (lo, hi)
                    else:
                        guard[pred] = (max(cur[0], lo), min(cur[1], hi))
        return guard

    def refresh(self, rules: Iterable[Rule], oracle: CardinalityOracle) -> int:
        """Evict kernels of ``rules`` whose cardinality snapshot is stale.

        A snapshot is stale when some body relation's size changed by at
        least ``replan_factor`` (growth from empty counts).  Evicted keys
        are re-planned lazily on next request with the fresh oracle.
        Returns the number of kernels evicted.
        """
        factor = self.replan_factor
        if factor <= 0:
            return 0
        stale = []
        current: dict[str, int] = {}  # memoized oracle reads for this pass
        for rule in rules:
            for key in self._by_rule.get(id(rule), ()):
                kernel = self._kernels.get(key)
                if kernel is None or not kernel.sizes:
                    continue
                for pred, old in kernel.sizes.items():
                    new = current.get(pred)
                    if new is None:
                        new = current[pred] = oracle(pred)
                    if new == old:
                        continue
                    if max(old, new) >= factor * max(1, min(old, new)):
                        stale.append(key)
                        break
        for key in stale:
            del self._kernels[key]
            self._by_rule[key[0]].remove(key)
        if stale and self.metrics is not None:
            self.metrics.replans_triggered += len(stale)
        return len(stale)
