"""Differential count timelines (Figure 5).

Laddder tracks, per tuple, at which fixpoint iteration (timestamp) each of
its derivations appeared.  The *differential count* timeline is the sparse
list of ``(timestamp, Δcount)`` entries; the cumulative count, cumulative
existence, and differential existence of Figure 5 are derived views.

Within one epoch's settled state all deltas are non-negative (the
inflationary invariant: once derived, a tuple exists at every later
iteration), so cumulative existence is a single step and
:meth:`Timeline.first` — the timestamp of first appearance — fully
characterizes it.  Negative entries appear only transiently inside an
epoch's compensation queue, never in a settled timeline.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Iterator

#: Timestamp meaning "never exists" in first/existence computations.
NEVER: float = float("inf")


class Timeline:
    """A sparse differential count timeline for one tuple."""

    __slots__ = ("_times", "_deltas")

    def __init__(self) -> None:
        self._times: list[int] = []
        self._deltas: list[int] = []

    def __bool__(self) -> bool:
        return bool(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{d:+d}" for t, d in self.entries())
        return f"Timeline({inner})"

    def entries(self) -> Iterator[tuple[int, int]]:
        """The non-zero differential count entries, in timestamp order."""
        return zip(self._times, self._deltas)

    def add(self, timestamp: int, delta: int) -> None:
        """Merge ``delta`` into the entry at ``timestamp`` (dropping zeros)."""
        if delta == 0:
            return
        i = bisect_left(self._times, timestamp)
        if i < len(self._times) and self._times[i] == timestamp:
            merged = self._deltas[i] + delta
            if merged == 0:
                del self._times[i]
                del self._deltas[i]
            else:
                self._deltas[i] = merged
        else:
            self._times.insert(i, timestamp)
            self._deltas.insert(i, delta)

    def cumulative(self, timestamp: int) -> int:
        """Cumulative count at ``timestamp`` (Figure 5, top-left).

        Runs a prefix sum over the first ``i`` deltas without materializing
        a slice copy — probes are frequent, timelines can be long.
        """
        i = bisect_right(self._times, timestamp)
        return sum(islice(self._deltas, i))

    def total(self) -> int:
        """Cumulative count at infinity."""
        return sum(self._deltas)

    def first(self) -> float:
        """First timestamp with positive cumulative count, or ``NEVER``.

        In settled (all-non-negative) timelines this is simply the first
        entry; the prefix scan also handles transient mixed-sign states.
        """
        running = 0
        for t, d in zip(self._times, self._deltas):
            running += d
            if running > 0:
                return t
        return NEVER

    def exists_at(self, timestamp: int) -> bool:
        """Cumulative existence at ``timestamp`` (Figure 5, bottom-left)."""
        return self.cumulative(timestamp) > 0

    def existence_changes(self) -> list[tuple[int, int]]:
        """The differential existence timeline (Figure 5, bottom-right):
        ``(timestamp, ±1)`` at each toggle of cumulative existence."""
        changes = []
        running = 0
        exists = False
        for t, d in zip(self._times, self._deltas):
            running += d
            now = running > 0
            if now != exists:
                changes.append((t, 1 if now else -1))
                exists = now
        return changes

    def is_settled(self) -> bool:
        """True iff all deltas are non-negative (inflationary invariant)."""
        return all(d >= 0 for d in self._deltas)

    def copy(self) -> "Timeline":
        clone = Timeline()
        clone._times = list(self._times)
        clone._deltas = list(self._deltas)
        return clone

    def state_size(self) -> int:
        return len(self._times)
