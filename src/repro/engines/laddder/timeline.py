r"""Differential count timelines (Figure 5).

Laddder tracks, per tuple, at which fixpoint iteration (timestamp) each of
its derivations appeared.  The *differential count* timeline is the sparse
list of ``(timestamp, Δcount)`` entries; the cumulative count, cumulative
existence, and differential existence of Figure 5 are derived views.

Within one epoch's settled state all deltas are non-negative (the
inflationary invariant: once derived, a tuple exists at every later
iteration), so cumulative existence is a single step and
:meth:`Timeline.first` — the timestamp of first appearance — fully
characterizes it.  Negative entries appear only transiently inside an
epoch's compensation queue, never in a settled timeline.

Compaction (the long-haul soak fix, and its soundness boundary)
---------------------------------------------------------------

Settled existence being a single step means a settled timeline's entries
beyond the first carry no *exported* information — they record at which
later iterations additional derivations fired.  After an update epoch
settles the solver :meth:`compact`\ s touched timelines into the single
entry ``{first: total}`` (disable with ``REPRO_NO_COMPACT=1``), and
:meth:`redirect_negative` re-pairs later ``-1`` corrections — whose
firing-time targets may name a timestamp whose ``+1`` was folded into an
earlier entry — by cancelling against the nearest positive entry at or
below the target.

Compaction is restricted to predicates that cannot support themselves
through a dependency cycle.  For recursive predicates the positions are
*load-bearing*: a tuple kept alive by a cycle carries its external
anchor at one timestamp and the cyclic echo strictly later (a derivation
fires after its body atoms), and retracting the anchor must *move* the
first-existence so the cascade re-fires and the cycle collapses.
Folding ``[(t_anchor, 1), (t_echo, 1)]`` into ``[(t_anchor, 2)]`` makes
the anchor's retraction absorb (count stays positive, first unchanged)
and the echo survives as a zombie — the continuous-edit soak surfaced
exactly this as stale ``Top`` valuations after a statement delete (see
``docs/SOAK.md``).  Acyclic predicates have no such echoes; every
support gets its own exact ``-1`` from partner enumeration, so folding
only changes interior positions that nothing reads.  Under per-SCC
components the restriction makes the fold a *backstop*: a foldable
predicate's body atoms are all upstream and timeless, so its supports
fire together at timestamp 1 and its timelines are born single-entry.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Iterator

#: Timestamp meaning "never exists" in first/existence computations.
NEVER: float = float("inf")


class Timeline:
    """A sparse differential count timeline for one tuple."""

    __slots__ = ("_times", "_deltas")

    def __init__(self) -> None:
        self._times: list[int] = []
        self._deltas: list[int] = []

    def __bool__(self) -> bool:
        return bool(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{d:+d}" for t, d in self.entries())
        return f"Timeline({inner})"

    def entries(self) -> Iterator[tuple[int, int]]:
        """The non-zero differential count entries, in timestamp order."""
        return zip(self._times, self._deltas)

    def add(self, timestamp: int, delta: int) -> None:
        """Merge ``delta`` into the entry at ``timestamp`` (dropping zeros)."""
        if delta == 0:
            return
        i = bisect_left(self._times, timestamp)
        if i < len(self._times) and self._times[i] == timestamp:
            merged = self._deltas[i] + delta
            if merged == 0:
                del self._times[i]
                del self._deltas[i]
            else:
                self._deltas[i] = merged
        else:
            self._times.insert(i, timestamp)
            self._deltas.insert(i, delta)

    def cumulative(self, timestamp: int) -> int:
        """Cumulative count at ``timestamp`` (Figure 5, top-left).

        Settled-and-compacted timelines are single-entry, so that case is a
        branch instead of a prefix sum; longer (transient or uncompacted)
        timelines sum the first ``i`` deltas without materializing a slice
        copy — probes are frequent.
        """
        times = self._times
        if len(times) == 1:
            return self._deltas[0] if times[0] <= timestamp else 0
        i = bisect_right(times, timestamp)
        return sum(islice(self._deltas, i))

    def total(self) -> int:
        """Cumulative count at infinity."""
        return sum(self._deltas)

    def first(self) -> float:
        """First timestamp with positive cumulative count, or ``NEVER``.

        In settled (all-non-negative) timelines this is simply the first
        entry; the prefix scan also handles transient mixed-sign states.
        """
        running = 0
        for t, d in zip(self._times, self._deltas):
            running += d
            if running > 0:
                return t
        return NEVER

    def exists_at(self, timestamp: int) -> bool:
        """Cumulative existence at ``timestamp`` (Figure 5, bottom-left)."""
        return self.cumulative(timestamp) > 0

    def existence_changes(self) -> list[tuple[int, int]]:
        """The differential existence timeline (Figure 5, bottom-right):
        ``(timestamp, ±1)`` at each toggle of cumulative existence."""
        changes = []
        running = 0
        exists = False
        for t, d in zip(self._times, self._deltas):
            running += d
            now = running > 0
            if now != exists:
                changes.append((t, 1 if now else -1))
                exists = now
        return changes

    def is_settled(self) -> bool:
        """True iff all deltas are non-negative (inflationary invariant)."""
        return all(d >= 0 for d in self._deltas)

    def redirect_negative(self, timestamp: int, delta: int) -> list[tuple[int, int]]:
        """Split a negative ``delta`` into placements that cancel against
        the nearest positive entries at or below ``timestamp``.

        After compaction a retraction's support may have been folded into
        an earlier entry than the firing time the correction targets; this
        walks downward consuming positive support so the cancellation still
        telescopes exactly.  On an uncompacted timeline the support sits at
        ``timestamp`` itself and the result is ``[(timestamp, delta)]``.
        Any residue with no positive support below falls through at
        ``timestamp``, preserving the transient mixed-sign behaviour.
        """
        if delta >= 0:
            raise ValueError("redirect_negative wants a negative delta")
        remaining = -delta
        placements: list[tuple[int, int]] = []
        times, deltas = self._times, self._deltas
        for j in range(bisect_right(times, timestamp) - 1, -1, -1):
            if remaining == 0:
                break
            if deltas[j] > 0:
                take = min(remaining, deltas[j])
                placements.append((times[j], -take))
                remaining -= take
        if remaining:
            placements.append((timestamp, -remaining))
        return placements

    def compact(self) -> int:
        """Merge a settled multi-entry timeline into ``{first: total}``.

        Only all-non-negative (settled) timelines are eligible — existence
        is then a single step at the first entry, so later entries only
        record support positions, which :meth:`redirect_negative` no longer
        needs at exact timestamps.  The *caller* must additionally ensure
        the tuple's predicate cannot support itself through a dependency
        cycle: folding a cyclic echo into its anchor masks the
        first-existence move that unwinds the cycle on retraction (module
        docstring).  Returns the number of entries removed (0 when nothing
        changed).
        """
        if len(self._times) < 2 or not self.is_settled():
            return 0
        removed = len(self._times) - 1
        total = sum(self._deltas)
        first = self._times[0]
        self._times[:] = [first]
        self._deltas[:] = [total]
        return removed

    def copy(self) -> "Timeline":
        clone = Timeline()
        clone._times = list(self._times)
        clone._deltas = list(self._deltas)
        return clone

    def state_size(self) -> int:
        return len(self._times)
