"""Render a Laddder solver's state as a Figure 4-style evaluation trace.

Groups every derived tuple by first-appearance timestamp and prints
``T -> tuples`` lines with ``NxTuple`` support-count prefixes — the exact
presentation of the paper's Figure 4.
"""

from __future__ import annotations

from .solver import LaddderSolver


def format_trace(
    solver: LaddderSolver,
    preds: set[str] | None = None,
    hide_facts: bool = True,
) -> str:
    """The Figure 4 view of the current epoch's iteration trace.

    ``preds`` restricts the shown predicates; ``hide_facts`` collapses
    timestamp 0 (the input facts) into a summary line.
    """
    trace = solver.trace(preds=preds)
    lines = ["T  -> tuples first derived at timestamp T"]
    for timestamp, rows in trace.items():
        if timestamp == 0 and hide_facts:
            lines.append(f"0  -> ({len(rows)} input/upstream tuples)")
            continue
        rendered = []
        for pred, row, count in rows:
            inner = ", ".join(_short(v) for v in row)
            prefix = f"{count}x" if count > 1 else ""
            rendered.append(f"{prefix}{pred}({inner})")
        lines.append(f"{timestamp:<2} -> " + ", ".join(rendered))
    return "\n".join(lines)


def _short(value: object) -> str:
    text = repr(value) if not isinstance(value, str) else value
    if isinstance(value, str) and "/" in text:
        return text.rsplit("/", 1)[-1]
    return text
