"""The sequential incremental aggregation architecture (Section 5, Figure 6).

Per aggregation group we keep, sparsely by iteration timestamp, a balanced
tree of the aggregands *inserted at that timestamp* (``A`` in Figure 6) and
the rolled-up running totals ``R_i`` (the aggregate of everything inserted
at or before ``t_i``).  An epoch update touches one tree, re-rolls totals
forward, and **stops early** as soon as a recomputed total equals the stored
one (``C`` in Figure 6) — the key to millisecond updates.

The inflationary output of the aggregation is the set of tuples
``(group, R_i)`` first appearing at iteration ``t_i + 1``;
:meth:`GroupState.output_runs` exposes the value → first-appearance map the
solver diffs to drive downstream compensation.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable

from .aggtree import AggTree


class GroupState:
    """Trees, totals, and output runs for one aggregation group."""

    __slots__ = ("_combine", "_times", "_trees", "_totals", "rollup_steps", "journal")

    def __init__(self, combine: Callable[[object, object], object]):
        self._combine = combine
        self._times: list[int] = []  # sorted timestamps with non-empty trees
        self._trees: dict[int, AggTree] = {}
        self._totals: dict[int, object] = {}  # rolled-up R_i per timestamp
        #: instrumentation: total roll-up combine steps (ablation benches).
        self.rollup_steps = 0
        #: undo-log list installed by UpdateGuard; insert/remove append their
        #: inverses so a failed update can be replayed backwards.  Group
        #: state is a pure function of the per-timestamp aggregand multisets,
        #: so inverse replay restores trees *and* rolled-up totals.
        self.journal: list | None = None

    def __bool__(self) -> bool:
        return bool(self._times)

    # -- pickling (checkpoints) -------------------------------------------
    #
    # ``_combine`` is a bound method of a registered aggregator (under the
    # columnar backend: of an InternedAggregator holding the live intern
    # table), and the journal belongs to an in-flight guard.  Neither may
    # travel through a checkpoint — the restorer rebinds combine from the
    # freshly constructed solver's own registry (:func:`rebind`).

    def __getstate__(self):
        return {
            name: getattr(self, name)
            for cls in type(self).__mro__
            for name in getattr(cls, "__slots__", ())
            if name not in ("_combine", "journal")
        }

    def __setstate__(self, state):
        self._combine = None
        self.journal = None
        for name, value in state.items():
            setattr(self, name, value)

    def rebind(self, combine: Callable[[object, object], object]) -> None:
        """Attach a live combine after unpickling (checkpoint restore)."""
        self._combine = combine
        for tree in self._trees.values():
            tree.rebind(combine)

    def insert(self, timestamp: int, value: object) -> None:
        """Add one aggregand appearing at ``timestamp`` and re-roll."""
        tree = self._trees.get(timestamp)
        if tree is None:
            tree = AggTree(self._combine)
            self._trees[timestamp] = tree
            insort(self._times, timestamp)
        tree.insert(value)
        self._roll_from(timestamp)
        if self.journal is not None:
            self.journal.append((self.remove, timestamp, value))

    def remove(self, timestamp: int, value: object) -> None:
        """Remove one aggregand that appeared at ``timestamp`` and re-roll."""
        if self.journal is not None:
            self.journal.append((self.insert, timestamp, value))
        tree = self._trees[timestamp]
        tree.remove(value)
        if not tree:
            del self._trees[timestamp]
            del self._totals[timestamp]
            i = bisect_left(self._times, timestamp)
            del self._times[i]
            # Roll from the successor of the removed timestamp, seeded by
            # the predecessor's (unchanged) total.
            if i < len(self._times):
                self._roll_from(self._times[i])
            return
        self._roll_from(timestamp)

    def _roll_from(self, timestamp: int) -> None:
        """Recompute totals at ``timestamp`` and forward, stopping early once
        a recomputed total matches the stored one (Figure 6 C)."""
        i = bisect_left(self._times, timestamp)
        if i == len(self._times) or self._times[i] != timestamp:
            raise AssertionError(f"roll from unknown timestamp {timestamp}")
        if i == 0:
            running = None
        else:
            running = self._totals[self._times[i - 1]]
        for j in range(i, len(self._times)):
            t = self._times[j]
            local = self._trees[t].aggregate()
            if running is None:
                new_total = local
            else:
                new_total = self._combine(running, local)
                self.rollup_steps += 1
            if j > i and self._totals.get(t) == new_total:
                return  # early stop: nothing changes from here on
            self._totals[t] = new_total
            running = new_total

    def totals(self) -> list[tuple[int, object]]:
        """``(t_i, R_i)`` pairs in timestamp order."""
        return [(t, self._totals[t]) for t in self._times]

    def final(self) -> object:
        """The pruned export for this group: the last (extremal) total."""
        if not self._times:
            raise LookupError("final() of empty group")
        return self._totals[self._times[-1]]

    def output_runs(self) -> dict[object, float]:
        """Inflationary output view: aggregate value -> first appearance.

        A value derived first at collecting-timestamp ``t_i`` appears in the
        aggregating relation at ``t_i + 1`` (Figure 4: PT at 8 -> PTlub
        at 9).  Totals only advance along the aggregation direction, so each
        value occupies one contiguous run; we keep its first timestamp.
        """
        runs: dict[object, float] = {}
        for t in self._times:
            value = self._totals[t]
            if value not in runs:
                runs[value] = t + 1
        return runs

    def state_size(self) -> int:
        return sum(len(tree) for tree in self._trees.values()) + len(self._times)

    def check_consistency(self) -> str | None:
        """Self-check: re-derive every rolled-up total from the trees with
        no early stop and compare against the stored ``R_i``.  Returns a
        description of the first mismatch, or None if consistent.

        This is the invariant the Figure 6 early stop relies on: a stored
        total must equal the fold of all aggregands at or before its
        timestamp.  A buggy combine (non-deterministic, mutating) or a
        missed re-roll shows up here instead of as a wrong export three
        strata later.
        """
        if set(self._totals) != set(self._times):
            return (
                f"totals keyed at {sorted(self._totals)} but time index is "
                f"{self._times}"
            )
        running = None
        for t in self._times:
            tree = self._trees.get(t)
            if tree is None or not tree:
                return f"timestamp {t} listed without a non-empty aggregand tree"
            local = tree.aggregate()
            running = local if running is None else self._combine(running, local)
            if self._totals[t] != running:
                return (
                    f"stored total at t={t} is {self._totals[t]!r} but "
                    f"re-derived fold gives {running!r}"
                )
        return None


class NaiveGroupState(GroupState):
    """Ablation variant: no trees, no early stop — refold every timestamp's
    aggregand list from scratch on each change.

    Used by the ablation benchmark to quantify what the Section 5
    architecture buys; functionally identical to :class:`GroupState`.
    """

    __slots__ = ("_values",)

    def __init__(self, combine):
        super().__init__(combine)
        self._values: dict[int, list[object]] = {}

    def insert(self, timestamp: int, value: object) -> None:
        bucket = self._values.setdefault(timestamp, [])
        bucket.append(value)
        if timestamp not in self._trees:
            self._trees[timestamp] = AggTree(self._combine)  # placeholder key
            insort(self._times, timestamp)
        self._refold()
        if self.journal is not None:
            self.journal.append((self.remove, timestamp, value))

    def remove(self, timestamp: int, value: object) -> None:
        if self.journal is not None:
            self.journal.append((self.insert, timestamp, value))
        bucket = self._values[timestamp]
        bucket.remove(value)
        if not bucket:
            del self._values[timestamp]
            del self._trees[timestamp]
            self._totals.pop(timestamp, None)
            i = bisect_left(self._times, timestamp)
            del self._times[i]
        self._refold()

    def _refold(self) -> None:
        running = None
        for t in self._times:
            for value in self._values[t]:
                if running is None:
                    running = value
                else:
                    running = self._combine(running, value)
                    self.rollup_steps += 1
            self._totals[t] = running

    def check_consistency(self) -> str | None:
        running = None
        for t in self._times:
            for value in self._values.get(t, ()):
                running = value if running is None else self._combine(running, value)
            if self._totals.get(t) != running:
                return (
                    f"stored total at t={t} is {self._totals.get(t)!r} but "
                    f"re-derived fold gives {running!r}"
                )
        return None
