"""Balanced aggregand trees (Section 5, Figure 6 triangles).

Each (aggregation group, timestamp) bucket keeps its aggregands in a
balanced binary tree that stores, at every node, the aggregate of the
subtree rooted there — the data structure introduced in IncA [Szabó et al.
2018], applicable because well-behaving aggregators are associative and
commutative.  Inserting or deleting one aggregand touches O(log n) nodes,
after which the root aggregate (``r_i`` in Figure 6) is current.

The tree is an AVL tree keyed by :func:`canonical_key` (any total order
that is a function of value equality works — AC-ness makes the aggregation
order irrelevant); equal values share a node with a multiplicity count,
giving true multiset semantics.
"""

from __future__ import annotations

from typing import Callable, Iterator


def canonical_key(value: object) -> str:
    """A total-order key that is a function of value *equality*.

    ``repr`` alone is not: two equal frozensets can print their elements in
    different orders depending on construction history, which would make an
    equal aggregand unfindable on removal.  Sets are therefore keyed by the
    sorted keys of their elements; tuples recurse.
    """
    if isinstance(value, frozenset):
        inner = ",".join(sorted(canonical_key(v) for v in value))
        return "{" + inner + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(canonical_key(v) for v in value) + ")"
    return repr(value)


class _Node:
    __slots__ = ("key", "value", "count", "left", "right", "height", "aggregate")

    def __init__(self, key: str, value: object):
        self.key = key
        self.value = value
        self.count = 1
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1
        self.aggregate = value


class AggTree:
    """An AVL multiset of aggregands with per-node subtree aggregates."""

    __slots__ = ("_combine", "_root", "_size")

    def __init__(self, combine: Callable[[object, object], object]):
        self._combine = combine
        self._root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    # Checkpoints never serialize the combine callable (it may close over
    # the live intern table); the restorer calls :meth:`rebind`.

    def __getstate__(self):
        return (self._root, self._size)

    def __setstate__(self, state):
        self._combine = None
        self._root, self._size = state

    def rebind(self, combine: Callable[[object, object], object]) -> None:
        self._combine = combine

    def aggregate(self):
        """The aggregate of the whole multiset (the tree-root ``r_i``)."""
        if self._root is None:
            raise LookupError("aggregate of empty AggTree")
        return self._root.aggregate

    def insert(self, value: object) -> None:
        self._root = self._insert(self._root, canonical_key(value), value)
        self._size += 1

    def remove(self, value: object) -> None:
        """Remove one occurrence; raises KeyError if absent."""
        self._root = self._remove(self._root, canonical_key(value), value)
        self._size -= 1

    def values(self) -> Iterator[object]:
        """All aggregands (with multiplicity), in key order."""
        yield from self._iter(self._root)

    # -- AVL machinery -----------------------------------------------------

    def _iter(self, node: _Node | None) -> Iterator[object]:
        if node is None:
            return
        yield from self._iter(node.left)
        for _ in range(node.count):
            yield node.value
        yield from self._iter(node.right)

    def _insert(self, node: _Node | None, key: str, value: object) -> _Node:
        if node is None:
            return _Node(key, value)
        if key == node.key:
            node.count += 1
            # Multiplicity does not change the (idempotent-or-not) subtree
            # aggregate: the node's own value enters the fold once per
            # stored distinct value.  Multiset multiplicity matters only for
            # *membership* (when the last occurrence leaves), matching the
            # collecting-relation semantics where duplicate aggregands come
            # from distinct tuples carrying the same value.
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return self._rebalance(node)

    def _remove(self, node: _Node | None, key: str, value: object) -> _Node | None:
        if node is None:
            raise KeyError(f"aggregand not present: {value!r}")
        if key == node.key:
            if node.count > 1:
                node.count -= 1
                return node
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            node.value = successor.value
            node.count = successor.count
            node.right = self._remove_min(node.right)  # drops the whole node
            return self._rebalance(node)
        if key < node.key:
            node.left = self._remove(node.left, key, value)
        else:
            node.right = self._remove(node.right, key, value)
        return self._rebalance(node)

    def _remove_min(self, node: _Node) -> _Node | None:
        if node.left is None:
            return node.right
        node.left = self._remove_min(node.left)
        return self._rebalance(node)

    def _rebalance(self, node: _Node) -> _Node:
        self._refresh(node)
        balance = self._height(node.left) - self._height(node.right)
        if balance > 1:
            if self._height(node.left.left) < self._height(node.left.right):
                node.left = self._rotate_left(node.left)
                self._refresh(node)
            node = self._rotate_right(node)
        elif balance < -1:
            if self._height(node.right.right) < self._height(node.right.left):
                node.right = self._rotate_right(node.right)
                self._refresh(node)
            node = self._rotate_left(node)
        return node

    @staticmethod
    def _height(node: _Node | None) -> int:
        return 0 if node is None else node.height

    def _refresh(self, node: _Node) -> None:
        node.height = 1 + max(self._height(node.left), self._height(node.right))
        aggregate = node.value
        if node.left is not None:
            aggregate = self._combine(node.left.aggregate, aggregate)
        if node.right is not None:
            aggregate = self._combine(aggregate, node.right.aggregate)
        node.aggregate = aggregate

    def _rotate_left(self, node: _Node) -> _Node:
        pivot = node.right
        node.right = pivot.left
        pivot.left = node
        self._refresh(node)
        self._refresh(pivot)
        return pivot

    def _rotate_right(self, node: _Node) -> _Node:
        pivot = node.left
        node.left = pivot.right
        pivot.right = node
        self._refresh(node)
        self._refresh(pivot)
        return pivot

    def check_invariants(self) -> None:
        """Assert AVL balance and aggregate correctness (for tests)."""
        self._check(self._root)

    def _check(self, node: _Node | None) -> int:
        if node is None:
            return 0
        lh = self._check(node.left)
        rh = self._check(node.right)
        if abs(lh - rh) > 1:
            raise AssertionError("AVL balance violated")
        if node.height != 1 + max(lh, rh):
            raise AssertionError("stale height")
        expected = node.value
        if node.left is not None:
            expected = self._combine(node.left.aggregate, expected)
        if node.right is not None:
            expected = self._combine(expected, node.right.aggregate)
        if node.aggregate != expected:
            raise AssertionError("stale subtree aggregate")
        return node.height
