"""The Laddder solver (Sections 4–6): incremental Datalog with inflationary
lattice aggregation over differential-dataflow iteration timestamps.

Evaluation model
----------------

Per dependency component, every tuple carries a differential count timeline
over *iteration timestamps*: a derivation via substitution θ fires at
``max(first-existence of θ's body atoms) + 1`` and contributes ``+1`` to the
head tuple's count at that timestamp (Figure 4's support counts — e.g.
``2×Reach(proc)`` at timestamp 7).  A tuple *exists* from its first
timestamp with positive cumulative count; inflationary semantics guarantees
settled existence is a single upward step (Section 4.1).

Epochs and compensation (Section 4.2)
-------------------------------------

An input change opens a new epoch.  Its fact diffs enter the affected
component as count deltas at timestamp 0 and are processed in ascending
timestamp order from a priority queue.  Applying a delta may move a tuple's
first-existence; if it does not (a support count absorbed it, as in the
``s2.proc()`` deletion walk-through), propagation stops right there.  If it
does, the solver enumerates — once per substitution, deduplicated across
occurrences — every rule instantiation involving the tuple and emits the
exact firing-time corrections ``-1@t_old`` / ``+1@t_new``.  Processing one
delta at a time against current partner state makes the per-input
differences telescope to the exact total change, with no bilinearity
bookkeeping even for self-joins.

Aggregation uses the sequential architecture of Section 5
(:mod:`repro.engines.laddder.groups`): per group, balanced aggregand trees
per timestamp with rolled-up totals and early-stopping roll-up; the
aggregating relation's inflationary output tuples are driven by diffs of the
value → first-appearance runs.

Exports are pruned and timeless (Section 4.1's postprocessing): downstream
components receive only final aggregates per group, at timestamp 0.
"""

from __future__ import annotations

import heapq
import itertools
import os
from time import perf_counter

from ...datalog.ast import Literal, Rule
from ...datalog.errors import SolverError
from ...datalog.planning import delta_occurrences
from ...datalog.program import Program
from ...datalog.stratify import Component
from ...metrics import SolverMetrics
from ...robustness import faults as _faults
from ..aggspec import AggSpec, compile_agg_specs
from ..base import FactChanges, Solver, UpdateStats
from ..compile import RuleShape
from ..relation import RelationStore
from .groups import GroupState
from .state import TimedRelation
from .timeline import NEVER

_MISSING = object()


def _reaches(deps: dict[str, set[str]], start: str, target: str) -> bool:
    """True iff ``target`` is reachable from ``start`` in the pred graph."""
    seen: set[str] = set()
    stack = list(deps.get(start, ()))
    while stack:
        pred = stack.pop()
        if pred == target:
            return True
        if pred in seen:
            continue
        seen.add(pred)
        stack.extend(deps.get(pred, ()))
    return False


class _ComponentRelations(dict):
    """``pred -> TimedRelation`` with create-on-first-touch via ``__missing__``.

    Kernels and the compensation loop resolve relations on every probe;
    making the hit path a plain C-level ``dict.__getitem__`` (the bound
    ``__getitem__`` is what gets passed into kernels as their ``lookup``)
    keeps that resolution off the Python frame stack.  Only an actual miss
    pays for creation — including journal registration, so guarded-update
    rollback semantics are identical to the old ``rel()`` slow path.
    """

    __slots__ = ("state",)

    def __init__(self, state: "_ComponentState"):
        super().__init__()
        self.state = state

    def __reduce__(self):
        # Checkpoints capture relation maps; the ``state`` backref (plans,
        # kernels, registered callables) must not travel with them, so the
        # map pickles as a plain dict and the restorer rewraps it
        # (:meth:`_ComponentState.adopt_relations`).
        return (dict, (), None, None, iter(self.items()))

    def __missing__(self, pred: str) -> TimedRelation:
        state = self.state
        arity = state.arities.get(pred)
        if arity is None:
            raise SolverError(
                f"unknown predicate {pred!r} in component "
                f"{sorted(state.component.predicates)}"
            )
        relation = TimedRelation(
            arity, metrics=state.metrics, packed=state.backend == "columnar"
        )
        self[pred] = relation
        if state.journal is not None:
            relation.journal = state.journal
            state.journal.append((self.pop, pred, None))
        return relation


class _ComponentState:
    """Compiled plans plus runtime state for one dependency component."""

    def __init__(
        self,
        component: Component,
        program: Program,
        arities: dict,
        metrics: "SolverMetrics | None" = None,
        backend: str = "object",
    ):
        self.component = component
        self.program = program
        self.arities = arities
        self.metrics = metrics
        self.backend = backend
        self.specs: dict[str, AggSpec] = compile_agg_specs(component.rules, program)
        self.specs_by_collecting: dict[str, list[AggSpec]] = {}
        for spec in self.specs.values():
            self.specs_by_collecting.setdefault(spec.collecting_pred, []).append(spec)

        plain_rules = [r for r in component.rules if not r.is_aggregation]
        #: pred -> [(rule, pinned literal, occurrence index)] for every body
        #: occurrence; kernels are resolved per epoch (LaddderSolver binds
        #: them in ``_bind_kernels``) so join orders follow cardinalities.
        self.occurrences: dict[str, list[tuple[Rule, Literal, int]]] = {}
        for rule in plain_rules:
            for occ, literal in delta_occurrences(rule, include_negated=True):
                self.occurrences.setdefault(literal.pred, []).append(
                    (rule, literal, occ)
                )
        #: Rules with no relational body atom fire once, during solve().
        self.static_rules = [
            rule for rule in plain_rules if not rule.body_literals()
        ]
        #: Kernel tables (filled by LaddderSolver._bind_kernels; rebuilt
        #: only when the cache evicts a stale plan).
        self.occ_kernels: dict[str, list[tuple[Rule, RuleShape, object]]] = {}
        self.extractors: dict[str, object] = {}
        self.kernels_bound = False
        #: pred -> safe size interval (KernelCache.replan_guard); while all
        #: watched sizes stay inside, refresh cannot evict and is skipped.
        self.replan_guard: dict[str, tuple[float, float]] | None = None
        reads: set[str] = set()
        deps: dict[str, set[str]] = {}
        for rule in component.rules:
            head = rule.head.pred
            for literal in rule.body_literals():
                reads.add(literal.pred)
                deps.setdefault(head, set()).add(literal.pred)
        self.reads = reads
        self.upstream_reads = frozenset(reads - component.predicates)
        #: Predicates whose tuples can never support themselves (no
        #: dependency cycle through them).  Only these are eligible for
        #: settled-timeline compaction: for a self-supporting predicate
        #: the per-support firing positions are the well-foundedness
        #: mechanism that unwinds cyclic derivations on retraction, so
        #: folding them can leave zombie tuples (see
        #: :meth:`repro.engines.laddder.timeline.Timeline.compact`).
        #: Because components are SCCs, any predicate sharing a component
        #: is on a cycle, and a foldable predicate's body atoms are all
        #: upstream and timeless — its supports fire together at
        #: timestamp 1, so its timelines are born single-entry and the
        #: epoch-end fold is a sound backstop rather than a hot path.
        self.foldable = frozenset(
            pred
            for pred in component.predicates
            if not _reaches(deps, pred, pred)
        )

        self.relations: _ComponentRelations = _ComponentRelations(self)
        self.groups: dict[str, dict[tuple, GroupState]] = {p: {} for p in self.specs}
        #: Undo log installed by UpdateGuard for the duration of a guarded
        #: update; newly created relations inherit it and their creation is
        #: itself journaled.
        self.journal: list | None = None

    def reset(self) -> None:
        self.relations = _ComponentRelations(self)
        self.groups = {p: {} for p in self.specs}

    def adopt_relations(self, mapping: dict) -> None:
        """Rewrap a checkpoint-restored plain relation dict (pickled via
        :meth:`_ComponentRelations.__reduce__`) into the live container."""
        relations = _ComponentRelations(self)
        relations.update(mapping)
        self.relations = relations

    def rel(self, pred: str) -> TimedRelation:
        return self.relations[pred]

    def timeline_entries(self) -> int:
        """Differential-count entries across the component (gauge)."""
        return sum(rel.timeline_entries() for rel in self.relations.values())

    def state_size(self) -> int:
        cells = sum(rel.state_size() for rel in self.relations.values())
        cells += sum(
            group.state_size()
            for per_pred in self.groups.values()
            for group in per_pred.values()
        )
        return cells


class LaddderSolver(Solver):
    """Incremental solver with DDF timestamps and inflationary aggregation."""

    #: Iteration-timestamp ceiling: a well-behaved analysis stabilizes far
    #: below this; exceeding it indicates divergence (see Section 4.3).
    MAX_TIMESTAMP = 100_000

    def __init__(
        self,
        program: Program,
        metrics: SolverMetrics | None = None,
        provenance: bool | None = None,
    ):
        super().__init__(program, metrics=metrics, provenance=provenance)
        self._states = [
            _ComponentState(
                c, self.program, self.arities, self._store_metrics(),
                backend=self.backend,
            )
            for c in self.components
        ]
        self._exported = RelationStore(self.arities, backend=self.backend)
        self.last_stats: UpdateStats | None = None
        #: Settled-timeline compaction after each update epoch, for
        #: predicates with no dependency cycle through themselves — the
        #: sound residue of the long-haul soak investigation (see
        #: repro.engines.laddder.timeline and docs/SOAK.md): folding
        #: recursive histories is unsound, and foldable timelines are
        #: born single-entry, so this is a backstop.  Opt out with
        #: REPRO_NO_COMPACT=1 to keep behaviour bit-identical to the
        #: pre-compaction engine.
        self._compact = not os.environ.get("REPRO_NO_COMPACT")

    # -- public API ----------------------------------------------------------

    def solve(self) -> None:
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        self.budget.begin()
        self._exported = RelationStore(
            self.arities, metrics=self._store_metrics(), backend=self.backend
        )
        for state in self._states:
            state.metrics = self._store_metrics()
            state.reset()
        prov = self.provenance
        if prov is not None:
            prov.clear_all()
        for pred, rows in self._fact_items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for index, state in enumerate(self._states):
            deltas = []
            for pred in sorted(state.upstream_reads):
                for row in self._exported.get(pred).tuples:
                    deltas.append((pred, row, 0, 1))
            for rule in state.static_rules:
                for head_row in self.kernels.kernel(rule).fn(
                    state.relations.__getitem__
                ):
                    deltas.append((rule.head.pred, head_row, 0, 1))
                    if prov is not None:
                        prov.hint(rule.head.pred, head_row, rule)
            self._compensate(state, deltas, index)
            self._run_self_check(index)
        self._solved = True
        if active:
            self.metrics.solve_seconds += perf_counter() - started
            self._refresh_gauges()

    def update(
        self,
        insertions: FactChanges | None = None,
        deletions: FactChanges | None = None,
    ) -> UpdateStats:
        self._require_solved()
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        self.budget.begin()
        self.metrics.epochs += 1
        ins, dels = self._normalize_changes(insertions, deletions)
        footprint = self._impact_footprint(ins, dels)
        pending: dict[str, tuple[set[tuple], set[tuple]]] = {}
        for pred, rows in ins.items():
            pending.setdefault(pred, (set(), set()))[0].update(rows)
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for pred, rows in dels.items():
            pending.setdefault(pred, (set(), set()))[1].update(rows)
            relation = self._exported.get(pred)
            for row in rows:
                relation.discard(row)

        stats = UpdateStats()
        for index, state in enumerate(self._states):
            if footprint is not None and index not in footprint.strata:
                # Statically outside the batch's impact set: no delta can
                # have reached this stratum (footprints are component-
                # closed), so skip even the seed-intersection work.
                self.metrics.strata_skipped += 1
                continue
            deltas = []
            for pred in sorted(state.upstream_reads & pending.keys()):
                added, removed = pending[pred]
                for row in added:
                    deltas.append((pred, row, 0, 1))
                for row in removed:
                    deltas.append((pred, row, 0, -1))
            if not deltas:
                continue
            diff, work = self._compensate(state, deltas, index, compact=self._compact)
            self._run_self_check(index)
            stats.work += work
            for pred, (added, removed) in diff.items():
                bucket = pending.setdefault(pred, (set(), set()))
                for row in added:
                    bucket[1].discard(row)
                    bucket[0].add(row)
                for row in removed:
                    bucket[0].discard(row)
                    bucket[1].add(row)
        exports = self.program.exported_predicates()
        for pred, (added, removed) in pending.items():
            if pred not in exports or pred in self.edb:
                continue
            if added:
                stats.inserted[pred] = {self._extern_row(row) for row in added}
            if removed:
                stats.deleted[pred] = {self._extern_row(row) for row in removed}
        self.last_stats = stats
        if active:
            self.metrics.update_seconds += perf_counter() - started
            self._refresh_gauges()
        return stats

    def _refresh_gauges(self) -> None:
        """Recompute the post-epoch Laddder gauges (profiling only)."""
        self.metrics.timeline_entries = sum(
            state.timeline_entries() for state in self._states
        )

    def relation(self, pred: str) -> frozenset[tuple]:
        self._require_solved()
        return self._export_rows(self._exported.get(pred).tuples)

    def state_size(self) -> int:
        return self._exported.state_size() + sum(
            state.state_size() for state in self._states
        )

    # -- timelines introspection (tests, Figure 4/5 reproduction) -------------

    def timeline(self, pred: str, row: tuple):
        """The differential count timeline of a tuple (Figure 5), if any."""
        if self.intern is not None:
            row = self.intern.lookup_row(row)
            if row is None:
                return None
        for state in self._states:
            if pred in state.component.predicates or pred in state.reads:
                relation = state.relations.get(pred)
                if relation is not None and row in relation.timelines:
                    return relation.timelines[row].copy()
        return None

    def trace(self, preds: set[str] | None = None) -> dict[int, list[tuple[str, tuple, int]]]:
        """Group current tuples by first-existence timestamp — the Figure 4
        evaluation trace view.  Counts are the support counts at the
        first-appearance timestamp (Figure 4's ``2x`` prefixes)."""
        out: dict[int, list[tuple[str, tuple, int]]] = {}
        seen: set[tuple[str, tuple]] = set()
        for state in self._states:
            for pred, relation in state.relations.items():
                if preds is not None and pred not in preds:
                    continue
                for row, timeline in relation.timelines.items():
                    if (pred, row) in seen:
                        continue  # upstream copies appear in many components
                    seen.add((pred, row))
                    first = timeline.first()
                    if first == NEVER:
                        continue
                    out.setdefault(int(first), []).append(
                        (pred, self._extern_row(row), timeline.cumulative(int(first)))
                    )
        return {t: sorted(rows, key=repr) for t, rows in sorted(out.items())}

    # -- compensation core -----------------------------------------------

    def _bind_kernels(self, state: _ComponentState) -> None:
        """Resolve the epoch's kernel tables from the shared cache.

        Runs once per component visit, before the queue drains; ``refresh``
        evicts kernels whose body cardinalities shifted beyond the re-plan
        factor so they are re-planned here against live relation sizes.
        When nothing was evicted the tables from the previous visit are
        still valid and are kept as-is — typical updates touch a few tuples,
        so this path must stay cheap.
        Propagation kernels emit canonical register tuples (``regs`` mode) —
        the positional analogue of the sorted-binding substitution — which
        the paired :class:`RuleShape` turns into head rows and firing-time
        groundings.
        """
        kernels = self.kernels
        guard = state.replan_guard
        if state.kernels_bound and guard is not None:
            rel = state.rel
            if all(lo < len(rel(p)) < hi for p, (lo, hi) in guard.items()):
                return  # no watched cardinality left its safe interval

        def oracle(pred: str) -> int:
            return len(state.rel(pred))

        evicted = kernels.refresh(state.component.rules, oracle)
        if state.kernels_bound and not evicted:
            state.replan_guard = kernels.replan_guard(state.component.rules)
            return
        state.kernels_bound = True
        impact = self.impact
        # Impact-guided kernel pruning: occurrences pinned on a forever-
        # empty predicate never see an existence change, and a rule joining
        # a forever-empty relation never grounds a substitution — neither
        # is worth compiling.
        state.occ_kernels = {
            pred: [
                (
                    rule,
                    kernels.shape(rule),
                    kernels.kernel(
                        rule, pinned=occ, emit="regs", oracle=oracle
                    ).fn,
                )
                for rule, _literal, occ in entries
                if impact is None or impact.rule_viable(rule)
            ]
            for pred, entries in state.occurrences.items()
            if impact is None or impact.possibly_nonempty(pred)
        }
        state.extractors = {
            spec.pred: kernels.extractor(spec) for spec in state.specs.values()
        }
        state.replan_guard = kernels.replan_guard(state.component.rules)

    def _compensate(
        self,
        state: _ComponentState,
        deltas: list[tuple[str, tuple, int, int]],
        index: int = 0,
        compact: bool = False,
    ) -> tuple[dict[str, tuple[set[tuple], set[tuple]]], int]:
        """Drain one component's queue; returns (exported diff, work).

        With ``compact`` (update epochs when ``REPRO_NO_COMPACT`` is
        unset), timelines of *foldable* predicates — those that cannot
        support themselves through a dependency cycle — are folded to
        ``{first: total}`` once the queue drains, and their negative
        deltas cancel against the nearest folded support
        (:meth:`TimedRelation.add_delta` with ``redirect``).  Recursive
        predicates keep their full support histories: the positions are
        load-bearing for cyclic retraction (folding them absorbs the
        first-existence move that unwinds a cycle, leaving zombie
        tuples).  ``solve()`` never compacts: fresh state holds the full
        Figure 4/5 iteration trace, which ``trace()`` and the
        paper-fidelity tests read.
        """
        self._bind_kernels(state)
        metrics = self.metrics
        prov = self.provenance
        stratum = (
            metrics.stratum(index, state.component.predicates)
            if metrics.active
            else None
        )
        comp_started = perf_counter() if stratum is not None else 0.0
        counter = itertools.count()
        queue: list[tuple[int, int, str, tuple, int]] = []
        for pred, row, t, d in deltas:
            heapq.heappush(queue, (t, next(counter), pred, row, d))

        presence_before: dict[str, dict[tuple, bool]] = {}
        groups_before: dict[str, dict[tuple, object]] = {}
        touched: set[tuple[str, tuple]] = set()
        work = 0

        max_timestamp = self.budget.iterations(self.MAX_TIMESTAMP)
        while queue:
            t = queue[0][0]
            if t > max_timestamp:
                raise self._budget_exceeded(
                    f"timestamp {t} exceeds MAX_TIMESTAMP ({max_timestamp}) in "
                    f"component {sorted(state.component.predicates)} — diverging "
                    f"analysis? (check eventual ⊑-monotonicity / widening)"
                )
            self._poll_budget(f"laddder compensation, component {index}")
            # Consolidate the whole timestamp batch first: opposite-sign
            # corrections for the same tuple cancel here, which is what
            # keeps compensation of cyclic derivations from chasing itself
            # up the timestamp axis (no push ever targets the current
            # batch, so consolidation is complete).
            if stratum is not None:
                metrics.queue_depth(len(queue))
            batch: dict[tuple[str, tuple], int] = {}
            while queue and queue[0][0] == t:
                _, _, pred, row, delta = heapq.heappop(queue)
                key = (pred, row)
                batch[key] = batch.get(key, 0) + delta
            batch_derived = 0
            for (pred, row), delta in batch.items():
                if delta == 0:
                    continue
                work += 1
                relation = state.relations[pred]
                old_first = relation.first(row)
                if pred in state.component.predicates:
                    presence_before.setdefault(pred, {}).setdefault(
                        row, old_first != NEVER
                    )
                fold = compact and pred in state.foldable
                if _faults.ACTIVE is not None:
                    _faults.fire("timeline.append")
                relation.add_delta(row, t, delta, redirect=fold)
                if fold:
                    touched.add((pred, row))
                new_first = relation._first[row]
                if prov is not None and pred in state.component.predicates:
                    # First-existence transitions are the insert/retract
                    # events of this engine: annotate on birth (the push-time
                    # hint carries the rule), forget on collapse to NEVER.
                    if old_first == NEVER and new_first != NEVER:
                        prov.annotate(pred, row)
                    elif old_first != NEVER and new_first == NEVER:
                        prov.forget(pred, row)
                if stratum is not None:
                    metrics.compensation(pred, row, t, delta)
                    if delta > 0:
                        batch_derived += 1
                    else:
                        metrics.tuples_retracted += 1
                    if old_first == new_first:
                        metrics.derivations(stratum, 0, 1)  # absorbed
                if old_first != new_first:
                    self._propagate(
                        state, pred, row, old_first, new_first, queue, counter,
                        stratum,
                    )
                    self._feed_aggregations(
                        state, pred, row, old_first, new_first, queue, counter,
                        groups_before,
                    )
                relation.cleanup(row)
            if stratum is not None:
                metrics.derivations(stratum, batch_derived)
                metrics.round_delta(stratum, batch_derived)

        if compact:
            for key in touched:
                relation = state.relations.get(key[0])
                if relation is not None:
                    metrics.timelines_compacted += relation.compact(key[1])

        if stratum is not None:
            diff = self._exported_component_diff(
                state, presence_before, groups_before
            )
            metrics.stratum_end(stratum, perf_counter() - comp_started)
            return diff, work
        return self._exported_component_diff(state, presence_before, groups_before), work

    def _propagate(
        self, state, pred, row, old_first, new_first, queue, counter,
        stratum=None,
    ) -> None:
        """Emit firing-time corrections for every rule instantiation that
        involves ``row``, whose existence moved ``old_first -> new_first``."""
        entries = state.occ_kernels.get(pred)
        if not entries:
            return
        metrics = self.metrics
        prov = self.provenance
        by_rule: dict[int, set] = {}
        neg_skip = (pred, row)
        lookup = state.relations.__getitem__
        for rule, shape, kernel in entries:
            if _faults.ACTIVE is not None:
                _faults.fire("kernel.emit")
            seen = by_rule.setdefault(id(rule), set())
            head_pred = rule.head.pred
            head_of = shape.head_of
            t0 = perf_counter() if stratum is not None else 0.0
            enumerated = 0
            # ``regs`` is the canonical substitution (values in sorted
            # variable-name order), so it doubles as the cross-occurrence
            # dedup key — the positional analogue of sorted(theta.items()).
            for regs in kernel(lookup, row, neg_skip=neg_skip):
                if regs in seen:
                    continue
                seen.add(regs)
                enumerated += 1
                t_old, t_new = self._firing_times(
                    state, shape, regs, pred, row, old_first, new_first
                )
                if t_old == t_new:
                    continue
                head_row = head_of(regs)
                if t_old != NEVER:
                    heapq.heappush(
                        queue,
                        (int(t_old), next(counter), head_pred, head_row, -1),
                    )
                if t_new != NEVER:
                    if prov is not None:
                        prov.hint(head_pred, head_row, rule)
                    heapq.heappush(
                        queue,
                        (int(t_new), next(counter), head_pred, head_row, 1),
                    )
            if stratum is not None:
                # Corrections are counted when applied (in _compensate), so
                # this records enumeration effort only.
                metrics.rule_fired(
                    repr(rule), 0, 0, perf_counter() - t0, stratum,
                    count=False, fired=enumerated,
                )

    def _firing_times(
        self, state, shape: RuleShape, regs: tuple, pred: str, row: tuple,
        old_first, new_first,
    ) -> tuple[float, float]:
        """The firing timestamps of the substitution in old and new worlds.

        All occurrences grounding to the changed ``row`` use its old/new
        first-existence respectively; everything else uses current state.
        A ``NEVER`` body atom makes the whole firing ``NEVER`` in that world.
        Eval/Test items are timeless (timestamp 0 <= any max) and absent
        from ``shape.literals``.
        """
        t_old: float = -1.0
        t_new: float = -1.0
        relations = state.relations
        for negated, lit_pred, grounder in shape.literals:
            grounded = grounder(regs)
            is_changed = lit_pred == pred and grounded == row
            # Reads go straight at the relations dict: a predicate with no
            # relation yet simply has no tuples (first == NEVER), and a pure
            # probe must not force an empty relation into existence.
            if negated:
                # Factor exists (at 0) while the atom is ABSENT.
                if is_changed:
                    f_old = 0.0 if old_first == NEVER else NEVER
                    f_new = 0.0 if new_first == NEVER else NEVER
                else:
                    relation = relations.get(lit_pred)
                    present = (
                        relation is not None
                        and relation.first(grounded) != NEVER
                    )
                    f_old = f_new = NEVER if present else 0.0
            else:
                if is_changed:
                    f_old, f_new = old_first, new_first
                else:
                    relation = relations.get(lit_pred)
                    f_old = f_new = (
                        relation.first(grounded)
                        if relation is not None
                        else NEVER
                    )
            t_old = max(t_old, f_old)
            t_new = max(t_new, f_new)
        return (
            NEVER if t_old == NEVER else t_old + 1,
            NEVER if t_new == NEVER else t_new + 1,
        )

    def _feed_aggregations(
        self, state, pred, row, old_first, new_first, queue, counter,
        groups_before,
    ) -> None:
        """Route a collecting tuple's existence change into the sequential
        aggregator architecture and queue the resulting output-run diffs."""
        undo = self._undo
        prov = self.provenance
        for spec in state.specs_by_collecting.get(pred, ()):
            if _faults.ACTIVE is not None:
                _faults.fire("aggregate.combine")
            split = state.extractors[spec.pred](row)
            if split is None:
                continue
            key, value = split
            per_pred = state.groups[spec.pred]
            group = per_pred.get(key)
            if group is None:
                group = per_pred[key] = GroupState(spec.aggregator.combine)
                if undo is not None:
                    group.journal = undo
                    undo.append((per_pred.pop, key, None))
            before = groups_before.setdefault(spec.pred, {})
            if key not in before:
                before[key] = group.final() if group else _MISSING
            old_runs = group.output_runs()
            if old_first != NEVER:
                group.remove(int(old_first), value)
            if new_first != NEVER:
                group.insert(int(new_first), value)
            new_runs = group.output_runs()
            for out_value in old_runs.keys() | new_runs.keys():
                t_out_old = old_runs.get(out_value, NEVER)
                t_out_new = new_runs.get(out_value, NEVER)
                if t_out_old == t_out_new:
                    continue
                out_row = spec.tuple_for(key, out_value)
                if t_out_old != NEVER:
                    heapq.heappush(
                        queue, (int(t_out_old), next(counter), spec.pred, out_row, -1)
                    )
                if t_out_new != NEVER:
                    if prov is not None:
                        prov.hint(spec.pred, out_row, spec.rule)
                    heapq.heappush(
                        queue, (int(t_out_new), next(counter), spec.pred, out_row, 1)
                    )

    # -- export --------------------------------------------------------------

    def _exported_component_diff(
        self, state, presence_before, groups_before
    ) -> dict[str, tuple[set[tuple], set[tuple]]]:
        """Compare pre-epoch exported views with the settled state, update
        the global exported store, and return per-pred (added, removed)."""
        diff: dict[str, tuple[set[tuple], set[tuple]]] = {}
        for pred, entries in groups_before.items():
            spec = state.specs[pred]
            added: set[tuple] = set()
            removed: set[tuple] = set()
            per_pred = state.groups[pred]
            for key, old_final in entries.items():
                group = per_pred.get(key)
                new_final = group.final() if group else _MISSING
                if old_final == new_final:
                    continue
                if old_final is not _MISSING:
                    removed.add(spec.tuple_for(key, old_final))
                if new_final is not _MISSING:
                    added.add(spec.tuple_for(key, new_final))
                if group is not None and not group:
                    del per_pred[key]
                    if self._undo is not None:
                        self._undo.append((per_pred.__setitem__, key, group))
            if added or removed:
                diff[pred] = (added, removed)
        for pred, entries in presence_before.items():
            if pred in state.specs:
                continue  # aggregated preds export through group finals
            relation = state.rel(pred)
            added = set()
            removed = set()
            for row, was in entries.items():
                now = relation.first(row) != NEVER
                if was and not now:
                    removed.add(row)
                elif now and not was:
                    added.add(row)
            if added or removed:
                diff[pred] = (added, removed)
        for pred, (added, removed) in diff.items():
            exported = self._exported.get(pred)
            for row in removed:
                exported.discard(row)
            for row in added:
                exported.add(row)
        return diff
