"""Laddder: the paper's incremental Datalog solver (Sections 4-6)."""

from .aggtree import AggTree
from .groups import GroupState, NaiveGroupState
from .solver import LaddderSolver
from .state import TimedRelation
from .timeline import NEVER, Timeline
from .traceview import format_trace

__all__ = [
    "AggTree",
    "GroupState",
    "LaddderSolver",
    "NEVER",
    "NaiveGroupState",
    "TimedRelation",
    "Timeline",
    "format_trace",
]
