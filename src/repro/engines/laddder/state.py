"""Timestamped relation storage for Laddder components.

A :class:`TimedRelation` maps tuples to their differential count
:class:`~repro.engines.laddder.timeline.Timeline` and maintains the same
lazy column indexes as :class:`repro.engines.relation.IndexedRelation`, so
the shared grounding machinery (:func:`repro.engines.grounding.run_plan`)
works unchanged — a tuple participates in joins while its timeline is
non-empty.

Physical removal of emptied tuples is *deferred*: epoch compensation needs
a just-deleted tuple to stay findable while its disappearance is being
propagated (its old derivations must be enumerated to retract their
consequences).  The solver calls :meth:`cleanup` after each propagation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .timeline import NEVER, Timeline


class TimedRelation:
    """Tuples with differential count timelines and lazy column indexes."""

    __slots__ = ("arity", "timelines", "_indexes")

    def __init__(self, arity: int):
        self.arity = arity
        self.timelines: dict[tuple, Timeline] = {}
        self._indexes: dict[tuple[int, ...], dict[tuple, set[tuple]]] = {}

    # -- the IndexedRelation protocol used by run_plan ---------------------

    def __len__(self) -> int:
        return len(self.timelines)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.timelines)

    def __contains__(self, item: tuple) -> bool:
        return item in self.timelines

    def matching(self, pattern: tuple) -> Iterable[tuple]:
        cols = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not cols:
            return list(self.timelines)
        if len(cols) == self.arity:
            exact = tuple(pattern)
            return (exact,) if exact in self.timelines else ()
        index = self._index(cols)
        key = tuple(pattern[c] for c in cols)
        return index.get(key, ())

    def _index(self, cols: tuple[int, ...]) -> dict[tuple, set[tuple]]:
        index = self._indexes.get(cols)
        if index is None:
            index = {}
            for item in self.timelines:
                key = tuple(item[c] for c in cols)
                index.setdefault(key, set()).add(item)
            self._indexes[cols] = index
        return index

    # -- timeline maintenance ----------------------------------------------

    def add_delta(self, item: tuple, timestamp: int, delta: int) -> Timeline:
        """Merge a count delta; registers the tuple in indexes if new."""
        timeline = self.timelines.get(item)
        if timeline is None:
            timeline = Timeline()
            self.timelines[item] = timeline
            for cols, index in self._indexes.items():
                key = tuple(item[c] for c in cols)
                index.setdefault(key, set()).add(item)
        timeline.add(timestamp, delta)
        return timeline

    def first(self, item: tuple) -> float:
        """First-existence timestamp of ``item``, or ``NEVER``."""
        timeline = self.timelines.get(item)
        if timeline is None:
            return NEVER
        return timeline.first()

    def cleanup(self, item: tuple) -> None:
        """Physically drop ``item`` if its timeline became empty."""
        timeline = self.timelines.get(item)
        if timeline is None or timeline:
            return
        del self.timelines[item]
        for cols, index in self._indexes.items():
            key = tuple(item[c] for c in cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del index[key]

    def present_tuples(self) -> set[tuple]:
        """Tuples that exist at the fixpoint (positive total count)."""
        return {item for item, tl in self.timelines.items() if tl.total() > 0}

    def state_size(self) -> int:
        timeline_cells = sum(tl.state_size() for tl in self.timelines.values())
        postings = sum(
            len(bucket)
            for index in self._indexes.values()
            for bucket in index.values()
        )
        return len(self.timelines) + timeline_cells + postings
