"""Timestamped relation storage for Laddder components.

A :class:`TimedRelation` maps tuples to their differential count
:class:`~repro.engines.laddder.timeline.Timeline` and shares the lazy
column-index maintenance of :class:`repro.engines.relation.ColumnIndexed`,
so the shared grounding machinery (:func:`repro.engines.grounding.run_plan`)
works unchanged — a tuple participates in joins while its timeline is
non-empty.

Physical removal of emptied tuples is *deferred*: epoch compensation needs
a just-deleted tuple to stay findable while its disappearance is being
propagated (its old derivations must be enumerated to retract their
consequences).  The solver calls :meth:`cleanup` after each propagation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..relation import ColumnIndexed
from .timeline import NEVER, Timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ...metrics import SolverMetrics


class TimedRelation(ColumnIndexed):
    """Tuples with differential count timelines and lazy column indexes."""

    __slots__ = (
        "arity", "timelines", "_indexes", "metrics", "journal", "packed",
        "_scan_cache", "_first",
    )

    def __init__(
        self,
        arity: int,
        metrics: "SolverMetrics | None" = None,
        packed: bool = False,
    ):
        self.arity = arity
        self.timelines: dict[tuple, Timeline] = {}
        self._indexes: dict[tuple[int, ...], dict] = {}
        self.metrics = metrics
        self.journal: list | None = None
        self.packed = packed
        self._scan_cache: tuple | None = None
        #: tuple -> cached first-existence timestamp; maintained on every
        #: timeline mutation so :meth:`first` — the single hottest probe of
        #: epoch compensation — is one dict lookup instead of a prefix scan.
        self._first: dict[tuple, float] = {}

    # -- the IndexedRelation protocol used by run_plan ---------------------

    def __len__(self) -> int:
        return len(self.timelines)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.timelines)

    def __contains__(self, item: tuple) -> bool:
        return item in self.timelines

    def _items(self):
        return self.timelines

    # -- timeline maintenance ----------------------------------------------

    def add_delta(
        self, item: tuple, timestamp: int, delta: int, redirect: bool = False
    ) -> Timeline:
        """Merge a count delta; registers the tuple in indexes if new.

        With ``redirect`` (compaction mode), a negative delta cancels
        against the nearest positive support at or below ``timestamp``
        (:meth:`Timeline.redirect_negative`) instead of landing at the
        targeted timestamp unconditionally — compaction folds support
        positions downward, so that is where the matching ``+1`` now
        lives.  Each actual placement is journaled individually, keeping
        rollback replay exact.
        """
        timeline = self.timelines.get(item)
        if timeline is None:
            timeline = Timeline()
            self.timelines[item] = timeline
            self._register(item)
        if redirect and delta < 0 and timeline:
            placements = timeline.redirect_negative(timestamp, delta)
        else:
            placements = ((timestamp, delta),)
        journal = self.journal
        for at, d in placements:
            timeline.add(at, d)
            if journal is not None:
                journal.append((self._undo_delta, item, at, -d))
        self._first[item] = timeline.first()
        return timeline

    def _undo_delta(self, item: tuple, timestamp: int, delta: int) -> None:
        """Journal replay target: cancel one recorded delta.

        Timeline content is exactly the running sum of every ``add_delta``
        ever applied, so replaying negated deltas in reverse reconstructs
        the pre-update timelines — including ones :meth:`cleanup` physically
        dropped mid-update.  The trailing cleanup matters: without it a
        delta-and-its-inverse pair would leave an *empty* timeline behind,
        and an empty-timeline dict entry wrongly satisfies membership
        probes in joins.
        """
        self.add_delta(item, timestamp, delta)
        self.cleanup(item)

    def compact(self, item: tuple) -> int:
        """Fold a settled multi-entry timeline into ``{first: total}``.

        The inverse is a verbatim restore of the pre-compaction entry
        lists — compaction is a representation change, not a content
        change, so snapshotting the two short lists is both exact and
        cheaper than journaling per-entry deltas.  Returns the number of
        entries removed (0 when the timeline was absent, single-entry, or
        not settled).
        """
        timeline = self.timelines.get(item)
        if timeline is None or len(timeline) < 2 or not timeline.is_settled():
            return 0
        if self.journal is not None:
            self.journal.append(
                (
                    self._restore_timeline,
                    item,
                    list(timeline._times),
                    list(timeline._deltas),
                )
            )
        return timeline.compact()

    def _restore_timeline(self, item: tuple, times: list, deltas: list) -> None:
        """Journal replay target: reinstate pre-compaction entry lists."""
        timeline = self.timelines.get(item)
        if timeline is None:
            timeline = Timeline()
            self.timelines[item] = timeline
            self._register(item)
        timeline._times[:] = times
        timeline._deltas[:] = deltas
        self._first[item] = timeline.first()

    def first(self, item: tuple) -> float:
        """First-existence timestamp of ``item``, or ``NEVER``."""
        return self._first.get(item, NEVER)

    def cleanup(self, item: tuple) -> None:
        """Physically drop ``item`` if its timeline became empty."""
        timeline = self.timelines.get(item)
        if timeline is None or timeline:
            return
        del self.timelines[item]
        del self._first[item]
        self._unregister(item)

    def present_tuples(self) -> set[tuple]:
        """Tuples that exist at the fixpoint (positive total count)."""
        return {item for item, tl in self.timelines.items() if tl.total() > 0}

    def timeline_entries(self) -> int:
        """Total differential-count entries across all timelines (gauge)."""
        return sum(len(tl) for tl in self.timelines.values())

    def state_size(self) -> int:
        return len(self.timelines) + self.timeline_entries() + self._postings()
