"""Compiled description of an aggregation rule, shared by all engines.

After normalization every aggregated predicate has exactly one aggregation
rule whose body is a single positive literal over its collecting relation.
:class:`AggSpec` pre-computes everything engines need: the body plan, the
aggregator object, and how to split/reassemble head tuples into
``(group key, aggregand value)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.ast import AggTerm, Constant, Head, Literal, Rule, Variable
from ..datalog.errors import SolverError
from ..datalog.planning import plan_body
from ..datalog.program import Program
from ..lattices import Aggregator


@dataclass
class AggSpec:
    """Everything an engine needs to evaluate one aggregation rule."""

    pred: str
    rule: Rule
    plan: list
    aggregator: Aggregator
    agg_pos: int
    collecting_pred: str

    @classmethod
    def compile(cls, rule: Rule, program: Program) -> "AggSpec":
        positions = rule.head.agg_positions()
        if len(positions) != 1:
            raise SolverError(f"{rule!r}: exactly one aggregation slot expected")
        if len(rule.body) != 1 or not isinstance(rule.body[0], Literal):
            raise SolverError(
                f"{rule!r}: aggregation body must be a single collecting literal"
            )
        agg_term: AggTerm = rule.head.args[positions[0]]
        return cls(
            pred=rule.head.pred,
            rule=rule,
            plan=plan_body(rule),
            aggregator=program.aggregators[agg_term.op],
            agg_pos=positions[0],
            collecting_pred=rule.body[0].pred,
        )

    @property
    def head(self) -> Head:
        return self.rule.head

    def key_and_value(self, binding: dict) -> tuple[tuple, object]:
        """Split a body binding into (group key, aggregand value)."""
        key = []
        value = None
        for i, term in enumerate(self.head.args):
            if i == self.agg_pos:
                value = binding[term.var.name]
            elif isinstance(term, Constant):
                key.append(term.value)
            elif isinstance(term, Variable):
                key.append(binding[term.name])
            else:  # pragma: no cover - normalization prevents this
                raise SolverError(f"unexpected head term {term!r}")
        return tuple(key), value

    def tuple_for(self, key: tuple, value: object) -> tuple:
        """Reassemble a head tuple from a group key and aggregate value.

        Group keys preserve head-argument order with the aggregate position
        removed, so reassembly is a slice splice.
        """
        pos = self.agg_pos
        return key[:pos] + (value,) + key[pos:]

    def split_tuple(self, row: tuple) -> tuple[tuple, object]:
        """Split a stored head tuple into (group key, value)."""
        pos = self.agg_pos
        return row[:pos] + row[pos + 1:], row[pos]


def compile_agg_specs(rules, program: Program) -> dict[str, AggSpec]:
    """AggSpec per aggregated predicate among ``rules``."""
    specs: dict[str, AggSpec] = {}
    for rule in rules:
        if rule.is_aggregation:
            specs[rule.head.pred] = AggSpec.compile(rule, program)
    return specs


def prune_aggregated(tuples, spec: AggSpec) -> set[tuple]:
    """The pruned view: per group, only the final (extremal) aggregate.

    This is ``Prn`` from Section 6.3 — discard intermediate inflationary
    aggregate results, keeping the ⊑-extremal (equivalently latest) one.
    """
    groups: dict[tuple, list] = {}
    for row in tuples:
        key, value = spec.split_tuple(row)
        groups.setdefault(key, []).append(value)
    return {
        spec.tuple_for(key, spec.aggregator.final(values))
        for key, values in groups.items()
    }
