"""Datalog solvers: two reference engines and two incremental engines.

* :class:`NaiveSolver` — executable semantics (Section 6.3); oracle.
* :class:`SemiNaiveSolver` — from-scratch performance baseline (Soufflé
  stand-in).
* :class:`DRedLSolver` — IncA's DRed-based incremental solver (Section 7.3
  baseline) with Ross–Sagiv-style aggregation.
* :class:`LaddderSolver` — the paper's contribution: DDF timestamps with
  inflationary lattice aggregation.
"""

from .base import FactChanges, Solver, UpdateStats
from .checkpoint import load_checkpoint, save_checkpoint
from .dred import DRedLSolver
from .explain import Derivation, explain
from .naive import NaiveSolver
from .laddder import LaddderSolver
from .seminaive import SemiNaiveSolver

__all__ = [
    "DRedLSolver",
    "Derivation",
    "FactChanges",
    "explain",
    "LaddderSolver",
    "NaiveSolver",
    "SemiNaiveSolver",
    "Solver",
    "load_checkpoint",
    "save_checkpoint",
    "UpdateStats",
]
