"""Indexed tuple storage shared by all solvers.

An :class:`IndexedRelation` is a set of tuples with lazily built, then
incrementally maintained, hash indexes on arbitrary column subsets.  Joins
probe :meth:`ColumnIndexed.matching` with a pattern (``None`` marks a free
column); the first probe on a column set builds the index, later mutations
keep every existing index current.

The lazy-index maintenance lives in :class:`ColumnIndexed` so that
:class:`repro.engines.laddder.state.TimedRelation` (tuples with timelines
instead of plain membership) shares one implementation instead of carrying
a drifting copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..datalog.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..metrics import SolverMetrics


class ColumnIndexed:
    """Lazy column-subset hash indexes over a set of same-arity tuples.

    Concrete subclasses own the tuple population: they must define ``arity``,
    ``__contains__``, an ``_items()`` iterable of stored tuples, and the
    ``_indexes``/``metrics`` attributes (kept in subclass ``__slots__`` so
    each class controls its own layout).  Mutations must call
    :meth:`_register` / :meth:`_unregister` to keep built indexes current.
    """

    __slots__ = ()

    def _items(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def matching(self, pattern: tuple) -> tuple:
        """All tuples agreeing with ``pattern`` on its non-None positions.

        Returns a **snapshot**: an immutable sequence detached from the
        relation's internal buckets, so callers may freely mutate the
        relation (add/discard/cleanup) while iterating the result.  Do not
        hold results across mutations expecting them to update.
        """
        metrics = self.metrics
        if metrics is not None:
            metrics.join_probes += 1
        cols = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not cols:
            return tuple(self._items())
        if len(cols) == self.arity:
            exact = tuple(pattern)
            return (exact,) if exact in self else ()
        index = self._index(cols)
        bucket = index.get(tuple(pattern[c] for c in cols))
        return tuple(bucket) if bucket else ()

    def _index(self, cols: tuple[int, ...]) -> dict[tuple, set[tuple]]:
        index = self._indexes.get(cols)
        if index is None:
            index = {}
            for item in self._items():
                key = tuple(item[c] for c in cols)
                index.setdefault(key, set()).add(item)
            self._indexes[cols] = index
            if self.metrics is not None:
                self.metrics.index_builds += 1
        return index

    def _register(self, item: tuple) -> None:
        """Insert ``item`` into every built index."""
        for cols, index in self._indexes.items():
            key = tuple(item[c] for c in cols)
            index.setdefault(key, set()).add(item)

    def _unregister(self, item: tuple) -> None:
        """Remove ``item`` from every built index."""
        for cols, index in self._indexes.items():
            key = tuple(item[c] for c in cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del index[key]

    def _postings(self) -> int:
        """Index entry count, for the memory benchmarks."""
        return sum(
            len(bucket)
            for index in self._indexes.values()
            for bucket in index.values()
        )


class IndexedRelation(ColumnIndexed):
    """A mutable set of same-arity tuples with column indexes.

    When ``journal`` is set (a list, installed by
    :class:`repro.robustness.guard.UpdateGuard`), every mutation appends its
    inverse as a ``(bound_method, *args)`` entry; replaying the journal in
    reverse restores the pre-update tuple population exactly.
    """

    __slots__ = ("arity", "tuples", "_indexes", "metrics", "journal")

    def __init__(self, arity: int, metrics: "SolverMetrics | None" = None):
        self.arity = arity
        self.tuples: set[tuple] = set()
        # cols (sorted tuple of column positions) -> key tuple -> set of tuples
        self._indexes: dict[tuple[int, ...], dict[tuple, set[tuple]]] = {}
        self.metrics = metrics
        self.journal: list | None = None

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, item: tuple) -> bool:
        return item in self.tuples

    def _items(self):
        return self.tuples

    def add(self, item: tuple) -> bool:
        """Insert; returns True iff the tuple was new."""
        if item in self.tuples:
            return False
        self.tuples.add(item)
        self._register(item)
        if self.journal is not None:
            self.journal.append((self.discard, item))
        return True

    def discard(self, item: tuple) -> bool:
        """Remove; returns True iff the tuple was present."""
        if item not in self.tuples:
            return False
        self.tuples.discard(item)
        self._unregister(item)
        if self.journal is not None:
            self.journal.append((self.add, item))
        return True

    def clear(self) -> None:
        if self.journal is not None and self.tuples:
            self.journal.append((self._restore, set(self.tuples)))
        self.tuples.clear()
        self._indexes.clear()

    def _restore(self, items: set) -> None:
        """Journal replay target for :meth:`clear`: reinstate the dropped
        population wholesale (indexes rebuild lazily)."""
        self.tuples = set(items)
        self._indexes.clear()

    def state_size(self) -> int:
        """Rough count of stored entries (tuples plus index postings), used
        by the memory benchmarks."""
        return len(self.tuples) + self._postings()


class RelationStore:
    """A name -> :class:`IndexedRelation` map with on-demand creation.

    Creation is strict: a predicate absent from the arity map is an error,
    not an empty nullary relation — silently fabricating one turns typos in
    rules or queries into wrong (empty) results instead of diagnostics.
    """

    __slots__ = ("relations", "arities", "metrics", "journal")

    def __init__(
        self, arities: dict[str, int], metrics: "SolverMetrics | None" = None
    ):
        self.arities = arities
        self.relations: dict[str, IndexedRelation] = {}
        self.metrics = metrics
        self.journal: list | None = None

    def get(self, pred: str) -> IndexedRelation:
        relation = self.relations.get(pred)
        if relation is None:
            arity = self.arities.get(pred)
            if arity is None:
                raise SolverError(
                    f"unknown predicate {pred!r}: not used by any rule and no "
                    f"facts were added for it"
                )
            relation = IndexedRelation(arity, metrics=self.metrics)
            self.relations[pred] = relation
            if self.journal is not None:
                relation.journal = self.journal
                self.journal.append((self.relations.pop, pred, None))
        return relation

    def __contains__(self, pred: str) -> bool:
        return pred in self.relations

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        return {name: frozenset(rel.tuples) for name, rel in self.relations.items()}

    def state_size(self) -> int:
        return sum(rel.state_size() for rel in self.relations.values())
