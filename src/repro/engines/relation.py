"""Indexed tuple storage shared by all solvers.

An :class:`IndexedRelation` is a set of tuples with lazily built, then
incrementally maintained, hash indexes on arbitrary column subsets.  Joins
probe :meth:`ColumnIndexed.matching` with a pattern (``None`` marks a free
column); the first probe on a column set builds the index, later mutations
keep every existing index current.

The lazy-index maintenance lives in :class:`ColumnIndexed` so that
:class:`repro.engines.laddder.state.TimedRelation` (tuples with timelines
instead of plain membership) shares one implementation instead of carrying
a drifting copy.

Storage backends
----------------

Two physical layouts hide behind the same interface (selected by
``REPRO_BACKEND``, resolved once per solver — see :func:`resolve_backend`):

``object`` (the default)
    rows are tuples of raw Python values; index keys are value tuples.

``columnar``
    rows are tuples of dense int handles from the solver's
    :class:`repro.engines.intern.InternTable`; every relation is *packed*
    — index keys are single machine ints (``row[c]`` for one column,
    shift-or folds for several), which skips the per-probe key-tuple
    allocation and hashes one int instead of a tuple.  Relations within
    :data:`COLUMNAR_MAX_ARITY` additionally mirror their population into
    struct-of-arrays columns (:class:`ColumnarRelation`) for cache-dense
    scans and cheap byte accounting; wider relations stay tuple-backed but
    keep the packed index keys so compiled kernels probe uniformly.

Both layouts journal mutations identically, so ``GuardedSolver`` rollback
is backend-agnostic.
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import TYPE_CHECKING, Iterator

from ..datalog.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..metrics import SolverMetrics

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # the pure-python path is mandatory, numpy opportunistic
    _np = None

#: Shared empty probe result — misses return one singleton, not fresh tuples.
_EMPTY: tuple = ()

#: Column shift for packed multi-column index keys.  Intern handles are
#: list indices, far below 2**32, so shift-or folds are collision-free.
_KEY_SHIFT = 32

#: Widest relation that materializes struct-of-arrays columns under the
#: columnar backend; wider ones keep packed keys over tuple storage.
COLUMNAR_MAX_ARITY = 16


def resolve_backend(arities: dict[str, int] | None = None) -> str:
    """The storage backend requested by ``REPRO_BACKEND``.

    ``object`` (or unset) and ``columnar`` select directly; ``auto`` picks
    columnar when every predicate fits the struct-of-arrays width.  Unknown
    values raise — a typo silently falling back to the default would make
    benchmark comparisons lie.
    """
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if raw in ("", "object"):
        return "object"
    if raw == "columnar":
        return "columnar"
    if raw == "auto":
        if arities and max(arities.values()) > COLUMNAR_MAX_ARITY:
            return "object"
        return "columnar"
    raise SolverError(
        f"unknown REPRO_BACKEND {raw!r} (expected 'object', 'columnar', or 'auto')"
    )


class ColumnIndexed:
    """Lazy column-subset hash indexes over a set of same-arity tuples.

    Concrete subclasses own the tuple population: they must define ``arity``,
    ``__contains__``, an ``_items()`` iterable of stored tuples, and the
    ``_indexes``/``metrics``/``packed``/``_scan_cache`` attributes (kept in
    subclass ``__slots__`` so each class controls its own layout).
    Mutations must call :meth:`_register` / :meth:`_unregister` to keep
    built indexes and the scan cache current.

    With ``packed`` set (the columnar backend), rows are int-handle tuples
    and index keys are packed machine ints instead of key tuples.
    """

    __slots__ = ()

    def _items(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def matching(self, pattern: tuple) -> tuple:
        """All tuples agreeing with ``pattern`` on its non-None positions.

        Returns a **snapshot**: an immutable sequence detached from the
        relation's internal buckets, so callers may freely mutate the
        relation (add/discard/cleanup) while iterating the result.  Do not
        hold results across mutations expecting them to update.
        """
        metrics = self.metrics
        cols = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not cols:
            rows = self.scan_rows()
            if metrics is not None:
                metrics.join_probes += 1
                metrics.join_probe_rows += len(rows)
            return rows
        if len(cols) == self.arity:
            exact = tuple(pattern)
            hit = exact in self
            if metrics is not None:
                metrics.join_probes += 1
                if hit:
                    metrics.join_probe_rows += 1
            return (exact,) if hit else _EMPTY
        bucket = self._index(cols).get(self._key_for(pattern, cols))
        if metrics is not None:
            metrics.join_probes += 1
            if bucket:
                metrics.join_probe_rows += len(bucket)
        return tuple(bucket) if bucket else _EMPTY

    def scan_rows(self) -> tuple:
        """The settled whole-relation snapshot, cached until a mutation.

        Zero-bound probes used to copy the full population per call; the
        cache makes repeated scans between mutations O(1).  The returned
        tuple is immutable, so holders survive later mutations (they just
        see the old population, exactly the ``matching`` contract).
        """
        rows = self._scan_cache
        if rows is None:
            rows = self._scan_cache = tuple(self._items())
        return rows

    def _key_for(self, item: tuple, cols: tuple[int, ...]):
        """The index key of ``item`` on ``cols`` for this layout."""
        if self.packed:
            if len(cols) == 1:
                return item[cols[0]]
            key = 0
            for c in cols:
                key = (key << _KEY_SHIFT) | item[c]
            return key
        return tuple(item[c] for c in cols)

    def index_for(self, cols: tuple[int, ...]) -> dict:
        """The (built) index on ``cols`` — the compiled kernels' probe seam."""
        return self._index(cols)

    def _index(self, cols: tuple[int, ...]) -> dict:
        index = self._indexes.get(cols)
        if index is None:
            index = {}
            key_for = self._key_for
            for item in self._items():
                key = key_for(item, cols)
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = set()
                bucket.add(item)
            self._indexes[cols] = index
            if self.metrics is not None:
                self.metrics.index_builds += 1
        return index

    def _register(self, item: tuple) -> None:
        """Insert ``item`` into every built index; invalidate the scan cache."""
        self._scan_cache = None
        key_for = self._key_for
        for cols, index in self._indexes.items():
            key = key_for(item, cols)
            bucket = index.get(key)
            if bucket is None:
                bucket = index[key] = set()
            bucket.add(item)

    def _unregister(self, item: tuple) -> None:
        """Remove ``item`` from every built index; invalidate the scan cache."""
        self._scan_cache = None
        key_for = self._key_for
        for cols, index in self._indexes.items():
            key = key_for(item, cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del index[key]

    def _postings(self) -> int:
        """Index entry count, for the memory benchmarks."""
        return sum(
            len(bucket)
            for index in self._indexes.values()
            for bucket in index.values()
        )

    def postings_bytes(self) -> int:
        """Approximate heap bytes held by the built indexes (containers and
        keys; the rows themselves are shared with the population)."""
        total = 0
        for index in self._indexes.values():
            total += sys.getsizeof(index)
            for key, bucket in index.items():
                total += sys.getsizeof(key) + sys.getsizeof(bucket)
        return total

    def storage_bytes(self) -> int:
        """Approximate heap bytes of the stored rows plus built indexes.

        Row *shells* (the tuple objects) are counted here; the values they
        point at are shared — with the program AST on the object backend,
        with the solver's intern table on the columnar one — and accounted
        for separately (:meth:`.InternTable.table_bytes`, deep-sizeof in
        the memory benchmark)."""
        items = self._items()
        total = sys.getsizeof(items) + self.postings_bytes()
        for row in items:
            total += sys.getsizeof(row)
        return total


class IndexedRelation(ColumnIndexed):
    """A mutable set of same-arity tuples with column indexes.

    When ``journal`` is set (a list, installed by
    :class:`repro.robustness.guard.UpdateGuard`), every mutation appends its
    inverse as a ``(bound_method, *args)`` entry; replaying the journal in
    reverse restores the pre-update tuple population exactly.
    """

    __slots__ = (
        "arity", "tuples", "_indexes", "metrics", "journal", "packed",
        "_scan_cache",
    )

    def __init__(
        self,
        arity: int,
        metrics: "SolverMetrics | None" = None,
        packed: bool = False,
    ):
        self.arity = arity
        self.tuples: set[tuple] = set()
        # cols (sorted tuple of column positions) -> packed key or key tuple
        # -> set of tuples
        self._indexes: dict[tuple[int, ...], dict] = {}
        self.metrics = metrics
        self.journal: list | None = None
        self.packed = packed
        self._scan_cache: tuple | None = None

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, item: tuple) -> bool:
        return item in self.tuples

    def _items(self):
        return self.tuples

    def add(self, item: tuple) -> bool:
        """Insert; returns True iff the tuple was new."""
        if item in self.tuples:
            return False
        self.tuples.add(item)
        self._register(item)
        if self.journal is not None:
            self.journal.append((self.discard, item))
        return True

    def discard(self, item: tuple) -> bool:
        """Remove; returns True iff the tuple was present."""
        if item not in self.tuples:
            return False
        self.tuples.discard(item)
        self._unregister(item)
        if self.journal is not None:
            self.journal.append((self.add, item))
        return True

    def clear(self) -> None:
        if self.journal is not None and self.tuples:
            self.journal.append((self._restore, set(self.tuples)))
        self.tuples.clear()
        self._indexes.clear()
        self._scan_cache = None

    def _restore(self, items: set) -> None:
        """Journal replay target for :meth:`clear`: reinstate the dropped
        population wholesale (indexes rebuild lazily)."""
        self.tuples = set(items)
        self._indexes.clear()
        self._scan_cache = None

    def state_size(self) -> int:
        """Rough count of stored entries (tuples plus index postings), used
        by the memory benchmarks."""
        return len(self.tuples) + self._postings()


class ColumnarRelation(IndexedRelation):
    """Packed-key storage with struct-of-arrays column views.

    The tuple set stays authoritative (membership, journaling and the
    index buckets all speak row tuples); the ``arity`` dense ``array('q')``
    columns are materialized **lazily** from the settled population on the
    first :meth:`column`/:meth:`column_bytes` access after a mutation.
    Mutations therefore cost exactly what the tuple-backed relation costs —
    earlier revisions maintained the mirrors eagerly via swap-remove, which
    made the columnar backend pay per ``add``/``discard`` for vectors only
    the memory benchmarks and numpy consumers ever read.  Columns expose
    zero-copy numpy int64 views where numpy is importable; the pure-python
    layout is fully self-sufficient.
    """

    __slots__ = ("_columns",)

    def __init__(self, arity: int, metrics: "SolverMetrics | None" = None):
        super().__init__(arity, metrics=metrics, packed=True)
        #: ``(population snapshot, [array per column])`` — valid while the
        #: snapshot is the relation's current :meth:`scan_rows` result.
        self._columns: tuple[tuple, list[array]] | None = None

    def _materialize(self) -> list[array]:
        rows = self.scan_rows()
        cached = self._columns
        if cached is not None and cached[0] is rows:
            return cached[1]
        columns = [array("q") for _ in range(self.arity)]
        for row in rows:
            for column, value in zip(columns, row):
                column.append(value)
        self._columns = (rows, columns)
        return columns

    def column(self, i: int):
        """Column ``i`` as a dense vector — a zero-copy numpy int64 view
        when numpy is importable, the backing ``array('q')`` otherwise."""
        backing = self._materialize()[i]
        if _np is not None and len(backing):
            return _np.frombuffer(backing, dtype=_np.int64)
        return backing

    def column_bytes(self) -> int:
        """Exact bytes held by the struct-of-arrays representation."""
        return sum(
            column.itemsize * len(column) for column in self._materialize()
        )

    def storage_bytes(self) -> int:
        """Row shells and indexes plus the materialized column vectors."""
        return super().storage_bytes() + self.column_bytes()


def make_relation(
    arity: int,
    metrics: "SolverMetrics | None" = None,
    backend: str = "object",
) -> IndexedRelation:
    """One relation of the requested backend.

    The per-relation heuristic: under the columnar backend every relation
    gets packed index keys (compiled kernels probe one uniform layout), and
    relations within :data:`COLUMNAR_MAX_ARITY` columns also materialize
    the struct-of-arrays mirrors — nullary and very wide relations skip
    the mirrors but stay packed.
    """
    if backend == "columnar":
        if 1 <= arity <= COLUMNAR_MAX_ARITY:
            relation = ColumnarRelation(arity, metrics=metrics)
        else:
            relation = IndexedRelation(arity, metrics=metrics, packed=True)
        if metrics is not None:
            metrics.columnar_relations += 1
        return relation
    return IndexedRelation(arity, metrics=metrics)


class RelationStore:
    """A name -> :class:`IndexedRelation` map with on-demand creation.

    Creation is strict: a predicate absent from the arity map is an error,
    not an empty nullary relation — silently fabricating one turns typos in
    rules or queries into wrong (empty) results instead of diagnostics.
    """

    __slots__ = ("relations", "arities", "metrics", "journal", "backend")

    def __init__(
        self,
        arities: dict[str, int],
        metrics: "SolverMetrics | None" = None,
        backend: str = "object",
    ):
        self.arities = arities
        self.relations: dict[str, IndexedRelation] = {}
        self.metrics = metrics
        self.journal: list | None = None
        self.backend = backend

    def get(self, pred: str) -> IndexedRelation:
        relation = self.relations.get(pred)
        if relation is None:
            arity = self.arities.get(pred)
            if arity is None:
                raise SolverError(
                    f"unknown predicate {pred!r}: not used by any rule and no "
                    f"facts were added for it"
                )
            relation = make_relation(arity, metrics=self.metrics, backend=self.backend)
            self.relations[pred] = relation
            if self.journal is not None:
                relation.journal = self.journal
                self.journal.append((self.relations.pop, pred, None))
        return relation

    def __contains__(self, pred: str) -> bool:
        return pred in self.relations

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        return {name: frozenset(rel.tuples) for name, rel in self.relations.items()}

    def state_size(self) -> int:
        return sum(rel.state_size() for rel in self.relations.values())

    def tuple_count(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def storage_bytes(self) -> int:
        return sum(rel.storage_bytes() for rel in self.relations.values())
