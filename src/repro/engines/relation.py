"""Indexed tuple storage shared by all solvers.

An :class:`IndexedRelation` is a set of tuples with lazily built, then
incrementally maintained, hash indexes on arbitrary column subsets.  Joins
probe :meth:`matching` with a pattern (``None`` marks a free column); the
first probe on a column set builds the index, later mutations keep every
existing index current.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class IndexedRelation:
    """A mutable set of same-arity tuples with column indexes."""

    __slots__ = ("arity", "tuples", "_indexes")

    def __init__(self, arity: int):
        self.arity = arity
        self.tuples: set[tuple] = set()
        # cols (sorted tuple of column positions) -> key tuple -> set of tuples
        self._indexes: dict[tuple[int, ...], dict[tuple, set[tuple]]] = {}

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, item: tuple) -> bool:
        return item in self.tuples

    def add(self, item: tuple) -> bool:
        """Insert; returns True iff the tuple was new."""
        if item in self.tuples:
            return False
        self.tuples.add(item)
        for cols, index in self._indexes.items():
            key = tuple(item[c] for c in cols)
            index.setdefault(key, set()).add(item)
        return True

    def discard(self, item: tuple) -> bool:
        """Remove; returns True iff the tuple was present."""
        if item not in self.tuples:
            return False
        self.tuples.discard(item)
        for cols, index in self._indexes.items():
            key = tuple(item[c] for c in cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del index[key]
        return True

    def clear(self) -> None:
        self.tuples.clear()
        self._indexes.clear()

    def matching(self, pattern: tuple) -> Iterable[tuple]:
        """All tuples agreeing with ``pattern`` on its non-None positions."""
        cols = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not cols:
            return self.tuples
        if len(cols) == self.arity:
            exact = tuple(pattern)
            return (exact,) if exact in self.tuples else ()
        index = self._index(cols)
        key = tuple(pattern[c] for c in cols)
        return index.get(key, ())

    def _index(self, cols: tuple[int, ...]) -> dict[tuple, set[tuple]]:
        index = self._indexes.get(cols)
        if index is None:
            index = {}
            for item in self.tuples:
                key = tuple(item[c] for c in cols)
                index.setdefault(key, set()).add(item)
            self._indexes[cols] = index
        return index

    def state_size(self) -> int:
        """Rough count of stored entries (tuples plus index postings), used
        by the memory benchmarks."""
        postings = sum(
            len(bucket)
            for index in self._indexes.values()
            for bucket in index.values()
        )
        return len(self.tuples) + postings


class RelationStore:
    """A name -> :class:`IndexedRelation` map with on-demand creation."""

    __slots__ = ("relations", "arities")

    def __init__(self, arities: dict[str, int]):
        self.arities = arities
        self.relations: dict[str, IndexedRelation] = {}

    def get(self, pred: str) -> IndexedRelation:
        relation = self.relations.get(pred)
        if relation is None:
            relation = IndexedRelation(self.arities.get(pred, 0))
            self.relations[pred] = relation
        return relation

    def __contains__(self, pred: str) -> bool:
        return pred in self.relations

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        return {name: frozenset(rel.tuples) for name, rel in self.relations.items()}

    def state_size(self) -> int:
        return sum(rel.state_size() for rel in self.relations.values())
