"""DRedL — the DRed-based incremental solver that Laddder replaces.

This is the Section 7.3 comparison baseline: IncA's fixpoint algorithm
[Szabó et al. 2018], i.e. DRed [Gupta, Mumick & Subrahmanian 1993] extended
with Ross–Sagiv-style lattice aggregation (a group's aggregate is a single
*current* tuple; when it advances, the old tuple is deleted and the new one
inserted).

Characteristics the paper attributes to it — and which this implementation
exhibits by construction:

* **Over-deletion.**  A deletion sweep transitively deletes every tuple
  with at least one derivation using a deleted tuple, joining against the
  pre-sweep state; a re-derivation pass then restores tuples that still
  have alternative support.  "A positive support count ... is insufficient
  evidence for its continued existence" — DRed cannot tell derivations
  apart, so deletions touching widely-used tuples cascade through most of
  the database and get re-derived (Section 2's 9 s mean on minijavac).

* **Per-rule monotonicity requirement.**  Aggregate advances retract the
  old aggregate's consequences, so termination is only guaranteed when
  every rule is ⊑-monotonic (Ross–Sagiv).  Analyses that merely satisfy
  *eventual* ⊑-monotonicity — rules conditioned on intermediate aggregate
  values, like the k-update points-to analysis — carry no guarantee: they
  oscillate and trip the divergence guard ("IncA failed to terminate",
  Section 2), though this implementation's exact group reconciliation is
  robust enough that small instances sometimes happen to converge.  Rules
  that retract without any dominating counterpart oscillate under every
  ordering.  Constant propagation, interval, and set-based points-to are
  per-rule monotone and run fine.

Initialization runs the same change-propagation machinery from an empty
state (IncA's Rete back end behaves the same way), which is why its
from-scratch time is "essentially a standard bottom-up Datalog fixpoint
evaluation" (Section 7.3).
"""

from __future__ import annotations

from time import perf_counter

from ..datalog.ast import Constant, Literal, Rule, Variable
from ..datalog.errors import SolverError
from ..datalog.planning import delta_occurrences
from ..datalog.program import Program
from ..datalog.stratify import Component
from ..metrics import SolverMetrics
from ..robustness import faults as _faults
from .aggspec import AggSpec, compile_agg_specs
from .base import FactChanges, Solver, UpdateStats
from .grounding import bind_pinned
from .relation import IndexedRelation, RelationStore, make_relation

_MISSING = object()


class _DredComponent:
    """Compiled plans and live state for one component under DRedL."""

    def __init__(
        self,
        component: Component,
        program: Program,
        arities: dict,
        metrics: "SolverMetrics | None" = None,
        backend: str = "object",
    ):
        self.component = component
        self.program = program
        self.arities = arities
        self.metrics = metrics
        self.backend = backend
        self.specs: dict[str, AggSpec] = compile_agg_specs(component.rules, program)
        self.specs_by_collecting: dict[str, list[AggSpec]] = {}
        for spec in self.specs.values():
            self.specs_by_collecting.setdefault(spec.collecting_pred, []).append(spec)
        plain_rules = [r for r in component.rules if not r.is_aggregation]
        self.plain_rules = plain_rules
        #: pred -> [(rule, pinned literal, occurrence index)] — kernels are
        #: resolved per epoch (see DRedLSolver._bind_kernels) so join orders
        #: can follow live cardinalities.
        self.occurrences: dict[str, list[tuple[Rule, Literal, int]]] = {}
        for rule in plain_rules:
            for occ, literal in delta_occurrences(rule, include_negated=True):
                self.occurrences.setdefault(literal.pred, []).append(
                    (rule, literal, occ)
                )
        self.static_rules = [
            rule for rule in plain_rules if not rule.body_literals()
        ]
        #: head pred -> [(rule, head-bound variable names)] for re-derivation.
        self.rederive_rules: dict[str, list[tuple[Rule, frozenset[str]]]] = {}
        for rule in plain_rules:
            bound = frozenset(v.name for v in rule.head_variables())
            self.rederive_rules.setdefault(rule.head.pred, []).append((rule, bound))
        #: Kernel tables (filled by DRedLSolver._bind_kernels; rebuilt only
        #: when the cache evicts a stale plan).
        self.occ_kernels: dict[str, list[tuple[Rule, Literal, object]]] = {}
        self.rederive_kernels: dict[str, list[tuple[Rule, object]]] = {}
        self.recompute_kernels: dict[str, object] = {}
        self.extractors: dict[str, object] = {}
        self.kernels_bound = False
        #: pred -> safe size interval (KernelCache.replan_guard); while all
        #: watched sizes stay inside, refresh cannot evict and is skipped.
        self.replan_guard: dict[str, tuple[float, float]] | None = None
        reads: set[str] = set()
        for rule in component.rules:
            for literal in rule.body_literals():
                reads.add(literal.pred)
        self.reads = reads
        self.upstream_reads = frozenset(reads - component.predicates)
        self.relations: dict[str, IndexedRelation] = {}
        self.totals: dict[str, dict[tuple, object]] = {p: {} for p in self.specs}
        #: Undo log installed by UpdateGuard for the duration of a guarded
        #: update; newly created relations inherit it and their creation is
        #: itself journaled.  (``totals`` is snapshot-restored by the guard
        #: instead — it is mutated by plain dict assignment in the sweeps.)
        self.journal: list | None = None

    def reset(self) -> None:
        self.relations = {}
        self.totals = {p: {} for p in self.specs}

    def rel(self, pred: str) -> IndexedRelation:
        relation = self.relations.get(pred)
        if relation is None:
            arity = self.arities.get(pred)
            if arity is None:
                raise SolverError(
                    f"unknown predicate {pred!r} in component "
                    f"{sorted(self.component.predicates)}"
                )
            relation = make_relation(arity, metrics=self.metrics, backend=self.backend)
            self.relations[pred] = relation
            if self.journal is not None:
                relation.journal = self.journal
                self.journal.append((self.relations.pop, pred, None))
        return relation

    def state_size(self) -> int:
        cells = sum(rel.state_size() for rel in self.relations.values())
        cells += sum(len(groups) for groups in self.totals.values())
        return cells


class DRedLSolver(Solver):
    """DRed with Ross–Sagiv lattice aggregation (the IncA baseline)."""

    #: Outer delete/re-derive/insert rounds per component update before the
    #: solver declares the analysis incompatible (non-per-rule-monotone).
    MAX_ROUNDS = 10_000

    def __init__(
        self,
        program: Program,
        aggregation: str = "inflationary",
        metrics: SolverMetrics | None = None,
        provenance: bool | None = None,
    ):
        """``aggregation`` selects the aggregate-maintenance mode:

        * ``"inflationary"`` (default) — intermediate aggregate results are
          never retracted; exports are pruned per group.  Robust: terminates
          for every analysis Laddder terminates on, with the same DRed
          over-deletion cost profile on deletions.
        * ``"rosssagiv"`` — faithful IncA behaviour: an aggregate advance
          deletes the old result and inserts the new one, and superseded
          intermediates are swept after every epoch.  Termination is only
          guaranteed for per-rule ⊑-monotonic analyses; eventually-monotone
          analyses (k-update) and aggregation-heavy recursive heaps can
          oscillate and trip the divergence guard — the behaviour the paper
          reports for IncA.
        """
        super().__init__(program, metrics=metrics, provenance=provenance)
        if aggregation not in ("inflationary", "rosssagiv"):
            raise ValueError(f"unknown aggregation mode {aggregation!r}")
        self.inflationary = aggregation == "inflationary"
        self._states = [
            _DredComponent(
                c, self.program, self.arities, self._store_metrics(),
                backend=self.backend,
            )
            for c in self.components
        ]
        self._exported = RelationStore(self.arities, backend=self.backend)
        self.last_stats: UpdateStats | None = None

    # -- public API ----------------------------------------------------------

    def solve(self) -> None:
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        self.budget.begin()
        self._exported = RelationStore(
            self.arities, metrics=self._store_metrics(), backend=self.backend
        )
        for state in self._states:
            state.metrics = self._store_metrics()
            state.reset()
        prov = self.provenance
        if prov is not None:
            prov.clear_all()
        for pred, rows in self._fact_items():
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for index, state in enumerate(self._states):
            insertions = set()
            for pred in state.upstream_reads:
                for row in self._exported.get(pred).tuples:
                    insertions.add((pred, row))
            for rule in state.static_rules:
                for head_row in self.kernels.kernel(rule).fn(state.rel):
                    insertions.add((rule.head.pred, head_row))
                    if prov is not None:
                        prov.hint(rule.head.pred, head_row, rule)
            self._run_component(state, insertions, set(), index)
            self._run_self_check(index)
        self._solved = True
        if active:
            self.metrics.solve_seconds += perf_counter() - started

    def update(
        self,
        insertions: FactChanges | None = None,
        deletions: FactChanges | None = None,
    ) -> UpdateStats:
        self._require_solved()
        active = self.metrics.active
        started = perf_counter() if active else 0.0
        self.budget.begin()
        ins, dels = self._normalize_changes(insertions, deletions)
        footprint = self._impact_footprint(ins, dels)
        pending: dict[str, tuple[set[tuple], set[tuple]]] = {}
        for pred, rows in ins.items():
            pending.setdefault(pred, (set(), set()))[0].update(rows)
            relation = self._exported.get(pred)
            for row in rows:
                relation.add(row)
        for pred, rows in dels.items():
            pending.setdefault(pred, (set(), set()))[1].update(rows)
            relation = self._exported.get(pred)
            for row in rows:
                relation.discard(row)

        stats = UpdateStats()
        for index, state in enumerate(self._states):
            if footprint is not None and index not in footprint.strata:
                # Statically outside the batch's impact set: no delta can
                # have reached this stratum (footprints are component-
                # closed), so skip even the seed-intersection work.
                self.metrics.strata_skipped += 1
                continue
            seeds_ins: set[tuple[str, tuple]] = set()
            seeds_del: set[tuple[str, tuple]] = set()
            for pred in state.upstream_reads & pending.keys():
                added, removed = pending[pred]
                seeds_ins.update((pred, row) for row in added)
                seeds_del.update((pred, row) for row in removed)
            if not seeds_ins and not seeds_del:
                continue
            diff, work = self._run_component(state, seeds_ins, seeds_del, index)
            self._run_self_check(index)
            stats.work += work
            for pred, (added, removed) in diff.items():
                bucket = pending.setdefault(pred, (set(), set()))
                for row in added:
                    bucket[1].discard(row)
                    bucket[0].add(row)
                for row in removed:
                    bucket[0].discard(row)
                    bucket[1].add(row)
        exports = self.program.exported_predicates()
        for pred, (added, removed) in pending.items():
            if pred not in exports or pred in self.edb:
                continue
            if added:
                stats.inserted[pred] = {self._extern_row(row) for row in added}
            if removed:
                stats.deleted[pred] = {self._extern_row(row) for row in removed}
        self.last_stats = stats
        if active:
            self.metrics.update_seconds += perf_counter() - started
        return stats

    def relation(self, pred: str) -> frozenset[tuple]:
        self._require_solved()
        return self._export_rows(self._exported.get(pred).tuples)

    def state_size(self) -> int:
        return self._exported.state_size() + sum(
            state.state_size() for state in self._states
        )

    # -- the DRed delete/re-derive/insert loop -------------------------------
    #
    # One epoch runs in up to MAX_ROUNDS rounds of three phases:
    #
    #   1. deletion sweep  — classic DRed: transitively over-delete against
    #      the pre-sweep state (aggregate tuples of dirtied groups included,
    #      which breaks self-supporting cycles through aggregation), apply
    #      removals, then re-derive over-deleted tuples that still have
    #      alternative support.
    #   2. ascension       — recompute dirtied group totals from survivors,
    #      then propagate insertions to quiescence.  Totals only *advance*
    #      here; superseded aggregate tuples are left in place and recorded
    #      as stale (Ross–Sagiv pairs the dominating insertion with the
    #      deletion — removing the old tuple mid-ascension would tear down
    #      the state being rebuilt).
    #   3. cleanup (Ross–Sagiv mode only) — remove stale (non-final)
    #      aggregate tuples with a *limited* sweep (no aggregate
    #      over-delete), re-derive, and reconcile dirtied groups.  A total
    #      that changes here re-seeds the next round; analyses conditioned
    #      on intermediate aggregates oscillate until the round guard trips
    #      (the divergence the paper reports for IncA/DRedL).  The default
    #      inflationary mode skips this phase: intermediates stay in the
    #      internal state and exports are pruned per group instead.

    def _bind_kernels(self, state: _DredComponent) -> None:
        """Resolve the epoch's kernel tables from the shared cache.

        Runs once per component visit — between strata, never inside the
        sweeps.  ``refresh`` first evicts kernels whose body cardinalities
        shifted beyond the re-plan factor, so evicted entries are re-planned
        here against the live relation sizes; when nothing was evicted the
        previous visit's tables are still valid and are kept (typical
        updates touch a few tuples, so this path must stay cheap).
        """
        kernels = self.kernels
        guard = state.replan_guard
        if state.kernels_bound and guard is not None:
            rel = state.rel
            if all(lo < len(rel(p)) < hi for p, (lo, hi) in guard.items()):
                return  # no watched cardinality left its safe interval

        def oracle(pred: str) -> int:
            return len(state.rel(pred))

        evicted = kernels.refresh(state.component.rules, oracle)
        if state.kernels_bound and not evicted:
            state.replan_guard = kernels.replan_guard(state.component.rules)
            return
        state.kernels_bound = True
        impact = self.impact
        # Impact-guided kernel pruning: occurrences pinned on a forever-
        # empty predicate never see a delta, and re-derivation kernels for
        # heads no EDB delta can reach are never consulted (over-deletion
        # only propagates through the delta-reachable closure) — neither is
        # worth compiling.  Non-viable rules join an empty relation and
        # enumerate nothing either way.  Ross–Sagiv mode's cleanup sweep
        # can over-delete along static-rule-fed chains no EDB delta
        # reaches, so there the re-derivation filter widens to every
        # possibly-nonempty predicate.
        if impact is not None:
            rederive_keep = (
                impact.delta_reachable
                if self.inflationary
                else impact.possibly_nonempty_preds
            )
        state.occ_kernels = {
            pred: [
                (rule, literal, kernels.kernel(rule, pinned=occ, oracle=oracle).fn)
                for rule, literal, occ in entries
                if impact is None or impact.rule_viable(rule)
            ]
            for pred, entries in state.occurrences.items()
            if impact is None or impact.possibly_nonempty(pred)
        }
        state.rederive_kernels = {
            pred: [
                (
                    rule,
                    kernels.kernel(
                        rule, bound=bound, emit="exists", oracle=oracle
                    ).fn,
                )
                for rule, bound in entries
                if impact is None or impact.rule_viable(rule)
            ]
            for pred, entries in state.rederive_rules.items()
            if impact is None or pred in rederive_keep
        }
        state.recompute_kernels = {}
        state.extractors = {}
        for spec in state.specs.values():
            group_vars = frozenset(
                term.name
                for pos, term in enumerate(spec.head.args)
                if pos != spec.agg_pos and isinstance(term, Variable)
            )
            state.recompute_kernels[spec.pred] = kernels.kernel(
                spec.rule, bound=group_vars, emit="keyvalue", spec=spec
            ).fn
            state.extractors[spec.pred] = kernels.extractor(spec)
        state.replan_guard = kernels.replan_guard(state.component.rules)

    def _run_component(
        self,
        state: _DredComponent,
        pending_ins: set[tuple[str, tuple]],
        pending_del: set[tuple[str, tuple]],
        index: int = 0,
    ) -> tuple[dict[str, tuple[set[tuple], set[tuple]]], int]:
        self._bind_kernels(state)
        metrics = self.metrics
        stratum = (
            metrics.stratum(index, state.component.predicates)
            if metrics.active
            else None
        )
        comp_started = perf_counter() if stratum is not None else 0.0
        net_added: dict[str, set[tuple]] = {}
        net_removed: dict[str, set[tuple]] = {}
        work = 0

        def record_add(pred: str, row: tuple) -> None:
            if pred not in state.component.predicates:
                return
            if self.inflationary and pred in state.specs:
                return  # aggregated exports are derived from group finals
            if row in net_removed.get(pred, ()):
                net_removed[pred].discard(row)
            else:
                net_added.setdefault(pred, set()).add(row)

        def record_remove(pred: str, row: tuple) -> None:
            if pred not in state.component.predicates:
                return
            if self.inflationary and pred in state.specs:
                return
            if row in net_added.get(pred, ()):
                net_added[pred].discard(row)
            else:
                net_removed.setdefault(pred, set()).add(row)

        #: group -> pre-epoch final (captured on first touch; inflationary
        #: mode derives aggregated-predicate exports from these).
        groups_before: dict[tuple[str, tuple], object] = {}

        max_rounds = self.budget.iterations(self.MAX_ROUNDS)
        for _ in range(max_rounds):
            if not pending_del and not pending_ins:
                break
            self._poll_budget(f"DRedL round, component {index}")
            if stratum is not None:
                round_derived_before = stratum.tuples_derived
            dirty: set[tuple[str, tuple]] = set()  # (agg pred, group key)

            # Phase 1: deletion sweep + re-derivation.  Dirtied groups'
            # stored totals are forgotten: their aggregand multisets changed
            # and any fold against the stale value would poison the
            # ascension; exact values are reconciled below, after the
            # restorations have physically landed.
            if pending_del:
                work += self._deletion_sweep(
                    state, pending_del, pending_ins, dirty, record_remove,
                    overdelete_aggregates=True, stratum=stratum,
                )
                pending_del = set()
                for spec_pred, key in dirty:
                    totals = state.totals[spec_pred]
                    if (spec_pred, key) not in groups_before:
                        groups_before[(spec_pred, key)] = totals.get(key, _MISSING)
                    totals.pop(key, None)

            # Phase 2: ascend (restorations + new insertions), then
            # reconcile every touched group against its actual aggregand
            # multiset; reconciliation may enable further ascension, so
            # iterate to quiescence (totals only advance here — finite).
            touched: set[tuple[str, tuple]] = set(dirty)
            work += self._insertion_sweep(
                state, pending_ins, pending_del, touched, record_add,
                groups_before, stratum=stratum,
            )
            pending_ins = set()
            reconciled: set[tuple[str, tuple]] = set()
            for _ in range(self.MAX_ROUNDS):
                to_insert: set[tuple[str, tuple]] = set()
                for spec_pred, key in sorted(touched - reconciled, key=repr):
                    reconciled.add((spec_pred, key))
                    spec = state.specs[spec_pred]
                    totals = state.totals[spec_pred]
                    exact = self._recompute_total(state, spec, key)
                    work += 1
                    if exact is None:
                        totals.pop(key, None)
                        continue
                    totals[key] = exact
                    row = spec.tuple_for(key, exact)
                    if row not in state.rel(spec_pred):
                        to_insert.add((spec_pred, row))
                        if self.provenance is not None:
                            self.provenance.hint(spec_pred, row, spec.rule)
                if not to_insert:
                    break
                work += self._insertion_sweep(
                    state, to_insert, pending_del, touched, record_add,
                    groups_before, stratum=stratum,
                )
            else:  # pragma: no cover - bounded by group count
                raise SolverError("DRedL reconcile loop failed to quiesce")

            if stratum is not None:
                # All physical inserts of a round happen in phase 2; record
                # the round's frontier before the (retract-only) cleanup.
                metrics.round_delta(
                    stratum, stratum.tuples_derived - round_derived_before
                )

            # Phase 3 (Ross-Sagiv mode): clean up stale aggregate tuples.
            if self.inflationary:
                continue
            stale: set[tuple[str, tuple]] = set()
            for spec_pred, key in touched:
                spec = state.specs[spec_pred]
                final = state.totals[spec_pred].get(key)
                relation = state.rel(spec_pred)
                pattern = spec.tuple_for(key, None)
                for row in relation.matching(pattern):
                    _, value = spec.split_tuple(row)
                    if final is None or value != final:
                        stale.add((spec_pred, row))
            if stale:
                cleanup_dirty: set[tuple[str, tuple]] = set()
                work += self._deletion_sweep(
                    state, stale, pending_ins, cleanup_dirty, record_remove,
                    overdelete_aggregates=False, stratum=stratum,
                )
                # Reconcile: a decreased total means rules were conditioned
                # on intermediate aggregates (not per-rule monotone); loop.
                for spec_pred, key in cleanup_dirty:
                    spec = state.specs[spec_pred]
                    totals = state.totals[spec_pred]
                    stored = totals.get(key)
                    recomputed = self._recompute_total(state, spec, key)
                    work += 1
                    if recomputed == stored:
                        if stored is not None:
                            row = spec.tuple_for(key, stored)
                            if row not in state.rel(spec_pred):
                                pending_ins.add((spec_pred, row))
                                if self.provenance is not None:
                                    self.provenance.hint(spec_pred, row, spec.rule)
                        continue
                    if stored is not None:
                        old_row = spec.tuple_for(key, stored)
                        if old_row in state.rel(spec_pred):
                            pending_del.add((spec_pred, old_row))
                    if recomputed is None:
                        totals.pop(key, None)
                    else:
                        totals[key] = recomputed
                        new_row = spec.tuple_for(key, recomputed)
                        pending_ins.add((spec_pred, new_row))
                        if self.provenance is not None:
                            self.provenance.hint(spec_pred, new_row, spec.rule)
        else:
            raise self._budget_exceeded(
                f"DRedL exceeded {max_rounds} delete/re-derive rounds in "
                f"component {sorted(state.component.predicates)} — the "
                f"analysis is not per-rule ⊑-monotonic (Ross–Sagiv); "
                f"use LaddderSolver"
            )

        if self.inflationary:
            for (spec_pred, key), old_final in groups_before.items():
                spec = state.specs[spec_pred]
                new_final = state.totals[spec_pred].get(key, _MISSING)
                if old_final == new_final:
                    continue
                if old_final is not _MISSING:
                    net_removed.setdefault(spec_pred, set()).add(
                        spec.tuple_for(key, old_final)
                    )
                if new_final is not _MISSING:
                    net_added.setdefault(spec_pred, set()).add(
                        spec.tuple_for(key, new_final)
                    )

        diff: dict[str, tuple[set[tuple], set[tuple]]] = {}
        for pred in set(net_added) | set(net_removed):
            added = net_added.get(pred, set()) - net_removed.get(pred, set())
            removed = net_removed.get(pred, set()) - net_added.get(pred, set())
            if added or removed:
                diff[pred] = (added, removed)
                exported = self._exported.get(pred)
                for row in removed:
                    exported.discard(row)
                for row in added:
                    exported.add(row)
        if stratum is not None:
            metrics.stratum_end(stratum, perf_counter() - comp_started)
        return diff, work

    def _deletion_sweep(
        self, state, seeds, pending_ins, dirty, record_remove,
        overdelete_aggregates: bool, stratum=None,
    ) -> int:
        """Transitive over-deletion against the pre-sweep state, physical
        removal, then re-derivation of survivors (restorations feed the
        caller's insertion worklist)."""
        metrics = self.metrics
        work = 0
        removed: set[tuple[str, tuple]] = set()
        negation_reinserts: set[tuple[str, tuple]] = set()
        frontier = [
            (pred, row)
            for pred, row in seeds
            if row in state.rel(pred)
        ]
        removed.update(frontier)
        while frontier:
            self._poll_budget("DRedL deletion sweep")
            next_frontier: list[tuple[str, tuple]] = []
            for pred, row in frontier:
                if _faults.ACTIVE is not None:
                    _faults.fire("kernel.emit")
                work += 1
                for rule, literal, kernel in state.occ_kernels.get(pred, ()):
                    if literal.negated:
                        if bind_pinned(literal, row) is not None:
                            negation_reinserts.add((pred, row))
                        continue
                    head_pred = rule.head.pred
                    t0 = perf_counter() if stratum is not None else 0.0
                    enumerated = 0
                    for head_row in kernel(state.rel, row):
                        enumerated += 1
                        head = (head_pred, head_row)
                        if head in removed:
                            continue
                        if head_row in state.rel(head_pred):
                            removed.add(head)
                            next_frontier.append(head)
                    if stratum is not None:
                        metrics.rule_fired(
                            repr(rule), 0, 0, perf_counter() - t0,
                            stratum, count=False, fired=enumerated,
                        )
                for spec in state.specs_by_collecting.get(pred, ()):
                    split = state.extractors[spec.pred](row)
                    if split is None:
                        continue
                    key, _value = split
                    dirty.add((spec.pred, key))
                    if not overdelete_aggregates:
                        continue
                    # The whole inflationary output history of the group is
                    # suspect once its aggregands change: over-delete every
                    # aggregate tuple of the group (not just the current
                    # total), or stale intermediates can keep retracted
                    # conclusions alive through cycles.
                    pattern = spec.tuple_for(key, None)
                    for total_row in state.rel(spec.pred).matching(pattern):
                        head = (spec.pred, total_row)
                        if head not in removed:
                            removed.add(head)
                            next_frontier.append(head)
            frontier = next_frontier

        # Re-derivation pass: over-deleted tuples — including retraction
        # seeds, which are derived tuples that may have other derivations —
        # are restored when alternative support survives.  Upstream rows are
        # inputs (never derived) and aggregates are restored by group
        # reconciliation.
        prov = self.provenance
        overdeleted_local: list[tuple[str, tuple]] = []
        for pred, row in removed:
            relation = state.rel(pred)
            if relation.discard(row):
                if stratum is not None:
                    metrics.tuples_retracted += 1
                record_remove(pred, row)
                if prov is not None and pred in state.component.predicates:
                    prov.forget(pred, row)
                if pred in state.component.predicates and pred not in state.specs:
                    overdeleted_local.append((pred, row))

        for pred, row in sorted(overdeleted_local, key=repr):
            supporting = self._rederivable(state, pred, row)
            if supporting is not None:
                pending_ins.add((pred, row))
                if prov is not None:
                    prov.hint(pred, row, supporting)
            work += 1

        for pred, row in negation_reinserts:
            for rule, literal, kernel in state.occ_kernels.get(pred, ()):
                if not literal.negated:
                    continue
                for head_row in kernel(state.rel, row):
                    pending_ins.add((rule.head.pred, head_row))
                    if prov is not None:
                        prov.hint(rule.head.pred, head_row, rule)
                    work += 1
        return work

    def _insertion_sweep(
        self, state, seeds, pending_del, touched, record_add, groups_before,
        stratum=None,
    ) -> int:
        """Monotone ascension: propagate insertions to quiescence.  Group
        totals only advance; superseded aggregate tuples stay in place (in
        Ross-Sagiv mode a later phase cleans them up; in inflationary mode
        they simply remain, and pruning happens at export) so the state
        being rebuilt is never torn down mid-flight.  Insertions into
        negated atoms seed the next round's deletions."""
        metrics = self.metrics
        prov = self.provenance
        work = 0
        worklist = list(seeds)
        while worklist:
            pred, row = worklist.pop()
            if _faults.ACTIVE is not None:
                _faults.fire("kernel.emit")
            if work & 1023 == 1023:
                # The worklist loop has no outer round boundary; poll the
                # deadline every ~1k applied tuples so a runaway ascension
                # cannot outlive the wall-clock budget.
                self._poll_budget("DRedL insertion sweep")
            relation = state.rel(pred)
            if not relation.add(row):
                if prov is not None:
                    prov.drop_hint(pred, row)
                if stratum is not None:
                    metrics.derivations(stratum, 0, 1)
                continue
            work += 1
            if prov is not None and pred in state.component.predicates:
                prov.annotate(pred, row)
            if stratum is not None:
                metrics.derivations(stratum, 1)
            record_add(pred, row)
            for rule, literal, kernel in state.occ_kernels.get(pred, ()):
                head_pred = rule.head.pred
                if literal.negated:
                    for head_row in kernel(state.rel, row, neg_skip=(pred, row)):
                        if head_row in state.rel(head_pred):
                            pending_del.add((head_pred, head_row))
                    continue
                t0 = perf_counter() if stratum is not None else 0.0
                enumerated = 0
                for head_row in kernel(state.rel, row):
                    enumerated += 1
                    if head_row not in state.rel(head_pred):
                        worklist.append((head_pred, head_row))
                        if prov is not None:
                            prov.hint(head_pred, head_row, rule)
                if stratum is not None:
                    metrics.rule_fired(
                        repr(rule), 0, 0, perf_counter() - t0,
                        stratum, count=False, fired=enumerated,
                    )
            for spec in state.specs_by_collecting.get(pred, ()):
                if _faults.ACTIVE is not None:
                    _faults.fire("aggregate.combine")
                split = state.extractors[spec.pred](row)
                if split is None:
                    continue
                key, value = split
                totals = state.totals[spec.pred]
                old_total = totals.get(key)
                if (spec.pred, key) not in groups_before:
                    groups_before[(spec.pred, key)] = (
                        old_total if old_total is not None else _MISSING
                    )
                new_total = (
                    value if old_total is None
                    else spec.aggregator.combine(old_total, value)
                )
                touched.add((spec.pred, key))
                if new_total == old_total:
                    # No advance — but an earlier sweep may have removed the
                    # total tuple itself; re-assert its presence so the
                    # group stays visible to rules.
                    total_row = spec.tuple_for(key, new_total)
                    if total_row not in state.rel(spec.pred):
                        worklist.append((spec.pred, total_row))
                        if prov is not None:
                            prov.hint(spec.pred, total_row, spec.rule)
                    continue
                totals[key] = new_total
                # The one loop in DRedL with no round guard: a strictly
                # advancing group total feeds itself back into the worklist,
                # so a non-Noetherian lattice diverges *here* — tick the
                # ascending-chain watchdog.
                self._chain_advance(spec.pred, key)
                advanced_row = spec.tuple_for(key, new_total)
                worklist.append((spec.pred, advanced_row))
                if prov is not None:
                    prov.hint(spec.pred, advanced_row, spec.rule)
        return work

    def _rederivable(self, state, pred: str, row: tuple) -> "Rule | None":
        """The first rule still deriving ``row`` in the current state, or
        None when no alternative support survives."""
        for rule, kernel in state.rederive_kernels.get(pred, ()):
            binding = self._bind_head(rule, row)
            if binding is None:
                continue
            for _ in kernel(state.rel, binding):
                return rule
        return None

    @staticmethod
    def _bind_head(rule: Rule, row: tuple) -> dict | None:
        binding: dict = {}
        for term, value in zip(rule.head.args, row):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            elif isinstance(term, Variable):
                if binding.get(term.name, value) != value:
                    return None
                binding[term.name] = value
        return binding

    def _recompute_total(self, state, spec: AggSpec, key: tuple):
        """Fold the group's surviving aggregands; None if the group is empty."""
        # Bind the group variables of the collecting atom, then enumerate
        # the group's surviving aggregands with the head-bound kernel.
        group_binding: dict = {}
        i = 0
        for pos, term in enumerate(spec.head.args):
            if pos == spec.agg_pos:
                continue
            if isinstance(term, Variable):
                group_binding[term.name] = key[i]
            i += 1
        kernel = state.recompute_kernels[spec.pred]
        total = None
        for theta_key, value in kernel(state.rel, group_binding):
            if theta_key != key:
                continue
            total = value if total is None else spec.aggregator.combine(total, value)
        return total
