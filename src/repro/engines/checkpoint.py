"""Solver checkpointing: persist the initial analysis, resume in the IDE.

Section 7.1 argues initialization delays "are acceptable because they are
(i) one-off costs only and (ii) possibly can be precomputed".  This module
is the precomputation story: pickle a solved solver's state to disk (e.g.
in CI), then restore it instantly when the IDE opens and keep updating
incrementally.

Programs carry registered Python callables (functions, tests, aggregator
operations), which pickle cannot serialize in general (lambdas, closures).
Checkpointing therefore snapshots only the solver's *data* state and
re-attaches it to a freshly constructed solver for the same program — the
caller rebuilds the program (cheap) and the checkpoint supplies the
expensive fixpoint.
"""

from __future__ import annotations

import io
import pickle
import pickletools
from pathlib import Path
from typing import Type

from ..datalog.errors import SolverError
from .base import Solver

#: Format marker stored in every checkpoint.
MAGIC = "repro-checkpoint-v1"

#: Attributes captured per solver class (data only — no compiled plans,
#: no registered callables).
_STATE_ATTRS = {
    "LaddderSolver": ["_facts", "_exported", "_solved"],
    "DRedLSolver": ["_facts", "_exported", "_solved"],
    "SemiNaiveSolver": ["_facts", "_exported", "_raw", "_totals", "_solved"],
    "NaiveSolver": ["_facts", "_exported", "_raw", "_solved"],
}


def _component_state(solver) -> list | None:
    states = getattr(solver, "_states", None)
    if states is None:
        return None
    captured = []
    for state in states:
        entry = {"relations": state.relations}
        if hasattr(state, "groups"):
            entry["groups"] = state.groups
        if hasattr(state, "totals"):
            entry["totals"] = state.totals
        captured.append(entry)
    return captured


def save_checkpoint(solver: Solver, path: str | Path) -> int:
    """Serialize a solved solver's state; returns the byte size written."""
    if not solver._solved:
        raise SolverError("cannot checkpoint an unsolved solver")
    cls_name = type(solver).__name__
    if cls_name not in _STATE_ATTRS:
        raise SolverError(f"checkpointing not supported for {cls_name}")
    payload = {
        "magic": MAGIC,
        "solver": cls_name,
        "rules": [repr(rule) for rule in solver.program.rules],  # fingerprint
        "attrs": {name: getattr(solver, name) for name in _STATE_ATTRS[cls_name]},
        "components": _component_state(solver),
    }
    buffer = io.BytesIO()
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    data = pickletools.optimize(buffer.getvalue())
    Path(path).write_bytes(data)
    return len(data)


def load_checkpoint(
    solver_cls: Type[Solver], program, path: str | Path
) -> Solver:
    """Reconstruct a solved solver from ``program`` plus a checkpoint.

    ``program`` must be (rule-for-rule) the program the checkpoint was taken
    from; registered callables come from it, the fixpoint state from disk.
    """
    payload = pickle.loads(Path(path).read_bytes())
    if payload.get("magic") != MAGIC:
        raise SolverError(f"{path} is not a repro checkpoint")
    if payload["solver"] != solver_cls.__name__:
        raise SolverError(
            f"checkpoint was taken from {payload['solver']}, "
            f"not {solver_cls.__name__}"
        )
    solver = solver_cls(program)
    if [repr(rule) for rule in solver.program.rules] != payload["rules"]:
        raise SolverError(
            "checkpoint does not match the program (rules differ); "
            "re-run the initial analysis"
        )
    for name, value in payload["attrs"].items():
        setattr(solver, name, value)
    components = payload["components"]
    if components is not None:
        states = solver._states
        if len(states) != len(components):
            raise SolverError("checkpoint component count mismatch")
        for state, entry in zip(states, components):
            state.relations = entry["relations"]
            if "groups" in entry:
                state.groups = entry["groups"]
            if "totals" in entry:
                state.totals = entry["totals"]
    return solver
