"""Solver checkpointing: persist the initial analysis, resume in the IDE.

Section 7.1 argues initialization delays "are acceptable because they are
(i) one-off costs only and (ii) possibly can be precomputed".  This module
is the precomputation story: pickle a solved solver's state to disk (e.g.
in CI), then restore it instantly when the IDE opens and keep updating
incrementally.

Programs carry registered Python callables (functions, tests, aggregator
operations), which pickle cannot serialize in general (lambdas, closures).
Checkpointing therefore snapshots only the solver's *data* state and
re-attaches it to a freshly constructed solver for the same program — the
caller rebuilds the program (cheap) and the checkpoint supplies the
expensive fixpoint.

File format (v2): a fixed binary envelope followed by the pickled payload.

    MAGIC (9 bytes) | version (u16 BE) | sha256(payload) (32 bytes) | payload

The checksum makes truncation and bit-rot detectable *before* the pickle
is parsed (a truncated pickle can otherwise deserialize into silently
partial state), and the payload carries a program hash so a checkpoint
cannot be restored into a program it was not taken from.  All failure
modes raise :class:`CheckpointError`.  Writes go through a temp file and
an atomic rename, so a crash mid-write never leaves a half-written file
at the destination path.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import pickletools
import struct
from pathlib import Path
from typing import Type

from ..datalog.errors import CheckpointError
from ..robustness import faults as _faults
from .base import Solver
from .intern import program_hash

__all__ = ["save_checkpoint", "load_checkpoint", "program_hash"]

#: Envelope marker leading every checkpoint file.
MAGIC = b"REPROCKPT"
#: Current checkpoint format version.  v3: aggregation group state is
#: pickled without its combine callable (rebound on restore) and the
#: payload records the storage backend plus the intern-table value list.
#: v4: an optional ``"provenance"`` payload key carries the per-tuple
#: annotation map of provenance-enabled solvers (docs/PROVENANCE.md).
VERSION = 4
#: Older format versions this build can still read.  v3 payloads simply
#: lack the provenance key: they restore with empty annotations, and
#: ``explain`` falls back to full proof search.
READ_VERSIONS = frozenset({3, VERSION})
_HEADER = struct.Struct(f">{len(MAGIC)}sH32s")

#: Attributes captured per solver class (data only — no compiled plans,
#: no registered callables).
_STATE_ATTRS = {
    "LaddderSolver": ["_facts", "_exported", "_solved"],
    "DRedLSolver": ["_facts", "_exported", "_solved"],
    "SemiNaiveSolver": ["_facts", "_exported", "_raw", "_totals", "_solved"],
    "NaiveSolver": ["_facts", "_exported", "_raw", "_solved"],
}


def _component_state(solver) -> list | None:
    states = getattr(solver, "_states", None)
    if states is None:
        return None
    captured = []
    for state in states:
        entry = {"relations": state.relations}
        if hasattr(state, "groups"):
            entry["groups"] = state.groups
        if hasattr(state, "totals"):
            entry["totals"] = state.totals
        captured.append(entry)
    return captured


def save_checkpoint(solver: Solver, path: str | Path) -> int:
    """Serialize a solved solver's state; returns the byte size written.

    The file is written to a sibling temp path and renamed into place, so
    an interrupted save leaves any previous checkpoint at ``path`` intact.
    """
    if not solver._solved:
        raise CheckpointError("cannot checkpoint an unsolved solver")
    cls_name = type(solver).__name__
    if cls_name not in _STATE_ATTRS:
        raise CheckpointError(f"checkpointing not supported for {cls_name}")
    payload = {
        "solver": cls_name,
        # The pre-interning hash captured at construction: handle-space
        # rule text differs per backend, the source program does not.
        "program": solver._program_hash,
        "backend": solver.backend,
        "intern": solver.intern.dump() if solver.intern is not None else None,
        "attrs": {name: getattr(solver, name) for name in _STATE_ATTRS[cls_name]},
        "components": _component_state(solver),
        "provenance": (
            solver.provenance.dump() if solver.provenance is not None else None
        ),
    }
    buffer = io.BytesIO()
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    body = pickletools.optimize(buffer.getvalue())
    data = _HEADER.pack(MAGIC, VERSION, hashlib.sha256(body).digest()) + body

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        if _faults.ACTIVE is not None:
            _faults.fire("checkpoint.write")
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return len(data)


def _read_body(path: Path) -> bytes:
    """Validate the envelope; return the checksummed payload bytes."""
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(data) < _HEADER.size or not data.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a repro checkpoint")
    _, version, digest = _HEADER.unpack_from(data)
    if version not in READ_VERSIONS:
        raise CheckpointError(
            f"{path} has checkpoint format version {version}, "
            f"but this build reads versions "
            f"{sorted(READ_VERSIONS)}; re-run the initial "
            f"analysis to regenerate it"
        )
    body = data[_HEADER.size:]
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointError(
            f"{path} failed its payload checksum — the file is truncated "
            f"or corrupt; re-run the initial analysis to regenerate it"
        )
    return body


def load_checkpoint(
    solver_cls: Type[Solver], program, path: str | Path, metrics=None
) -> Solver:
    """Reconstruct a solved solver from ``program`` plus a checkpoint.

    ``program`` must be (rule-for-rule) the program the checkpoint was taken
    from; registered callables come from it, the fixpoint state from disk.
    Any mismatch — engine class, program hash, format version, corrupt or
    truncated file — raises :class:`CheckpointError`.  ``metrics``, when
    given, is attached to the restored solver (service sessions keep one
    collector alive across a restore).
    """
    path = Path(path)
    body = _read_body(path)
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # checksummed, so this indicates a format bug
        raise CheckpointError(
            f"{path} payload failed to deserialize: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "solver" not in payload:
        raise CheckpointError(f"{path} is not a repro checkpoint")
    if payload["solver"] != solver_cls.__name__:
        raise CheckpointError(
            f"checkpoint was taken from {payload['solver']}, "
            f"not {solver_cls.__name__}"
        )
    solver = solver_cls(program, metrics=metrics)
    if payload["program"] != solver._program_hash:
        raise CheckpointError(
            "checkpoint does not match the program (rules differ); "
            "re-run the initial analysis"
        )
    saved_backend = payload.get("backend", "object")
    if saved_backend != solver.backend:
        raise CheckpointError(
            f"checkpoint was taken under the {saved_backend!r} storage "
            f"backend but this solver resolved {solver.backend!r} "
            f"(REPRO_BACKEND); restore under the matching backend or "
            f"re-run the initial analysis"
        )
    table = payload.get("intern")
    if table is not None:
        # The fresh solver's table holds exactly the program constants; the
        # dump must extend it with the same first-touch order, reproducing
        # the saved handle assignment that every pickled row relies on.
        try:
            solver.intern.restore(table)
        except ValueError as exc:
            raise CheckpointError(f"intern table mismatch: {exc}") from exc
    for name, value in payload["attrs"].items():
        setattr(solver, name, value)
    # Fact-only predicates (ones no rule mentions) get their arity
    # registered by the first ``add_facts`` row; restored facts bypass
    # ``add_facts``, so redo that registration here — otherwise the next
    # solve meets an "unknown predicate" error at its relation store.
    for pred, rows in solver._facts.items():
        if pred not in solver.arities:
            for row in rows:
                solver.arities[pred] = len(row)
                break
    components = payload["components"]
    if components is not None:
        states = solver._states
        if len(states) != len(components):
            raise CheckpointError("checkpoint component count mismatch")
        for state, entry in zip(states, components):
            adopt = getattr(state, "adopt_relations", None)
            if adopt is not None:
                adopt(entry["relations"])  # rewrap into the live container
            else:
                state.relations = entry["relations"]
            if "groups" in entry:
                state.groups = entry["groups"]
                # Group state pickles without its combine callable (it may
                # close over another solver's intern table); rebind to this
                # solver's live aggregator registry.
                for pred, per_pred in state.groups.items():
                    combine = state.specs[pred].aggregator.combine
                    for group in per_pred.values():
                        group.rebind(combine)
            if "totals" in entry:
                state.totals = entry["totals"]
    annotations = payload.get("provenance")
    if annotations is not None:
        # A provenance-enabled checkpoint restores its annotations even if
        # the restoring process did not opt in — the capture cost is
        # already paid, and explain works immediately.
        if solver.provenance is None:
            from ..provenance.store import ProvenanceStore

            solver.provenance = ProvenanceStore(
                solver.program, metrics=solver.metrics
            )
        solver.provenance.restore(annotations)
    return solver
